"""Causal tracing: propagation under faults, flight recorder, report CLI.

The tentpole invariant (ISSUE 6): a chaos run at a 5% fault rate must
reconstruct, from its JSONL trace alone, into exactly one well-formed
rooted causal span tree per request id — client at the root, every
server-side delivery (including redeliveries the fabric duplicated and
forwards across shards) a descendant, and the faults/retries/dedup hits
attached as annotated child events. The flight recorder's dumps must
round-trip through the same reconstruction and the report CLI.
"""

import json
import string

import pytest

from repro.cli import main as cli_main
from repro.distributed.chaos import run_chaos
from repro.distributed.coordinator import Cluster, ShardPolicy
from repro.distributed.faults import FaultPlan, RetryPolicy
from repro.obs import (
    FLIGHT,
    TRACER,
    CausalError,
    JsonlTraceWriter,
    MetricsRegistry,
    TraceContext,
    build_traces,
    find_rid,
    hop_rows,
    load_events,
    prometheus_text,
    render_tree,
    rid_index,
    summary_rows,
)


@pytest.fixture(autouse=True)
def _clean_tracer():
    # Tests here drive the global tracer directly; never leak state.
    yield
    if TRACER.enabled:
        TRACER.deactivate()
    FLIGHT.clear()
    FLIGHT.configure(None)


def _events(path):
    return load_events(str(path))


def _key(i):
    # Letter-only keys: the core alphabet rejects digits.
    return "key" + string.ascii_lowercase[i // 26] + string.ascii_lowercase[i % 26]


class TestTraceContext:
    def test_wire_round_trip(self):
        ctx = TraceContext(3, 17)
        assert TraceContext.from_wire(ctx.to_wire()).span_id == 17
        assert TraceContext.from_wire(None) is None

    def test_explicit_ctx_parents_under_remote_span(self, tmp_path):
        path = tmp_path / "t.jsonl"
        TRACER.activate([JsonlTraceWriter(str(path))])
        with TRACER.span("client_op") as outer:
            ctx = TRACER.current_context()
            assert ctx.span_id == outer.id
        with TRACER.span("server_op", ctx=ctx):
            pass
        TRACER.deactivate()
        traces = build_traces(_events(path))
        assert len(traces) == 1
        (trace,) = traces.values()
        root = trace.root
        assert root.op == "client_op"
        assert [c.op for c in root.children] == ["server_op"]

    def test_spans_without_ambient_get_fresh_traces(self, tmp_path):
        path = tmp_path / "t.jsonl"
        TRACER.activate([JsonlTraceWriter(str(path))])
        with TRACER.span("a"):
            pass
        with TRACER.span("b"):
            pass
        TRACER.deactivate()
        traces = build_traces(_events(path))
        assert sorted(t.root.op for t in traces.values()) == ["a", "b"]


class TestChaosCausalTrees:
    # One run shared by the assertions below: 5% of everything, crashes
    # included — the acceptance-criteria configuration.
    @pytest.fixture(scope="class")
    def chaos_trace(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("chaos") / "trace.jsonl"
        report = run_chaos(
            ops=800,
            seed=5,
            drop=0.05,
            duplicate=0.05,
            delay=0.05,
            trace_path=str(path),
        )
        assert report.converged
        return path

    def test_every_rid_reconstructs_to_one_rooted_tree(self, chaos_trace):
        traces = build_traces(_events(chaos_trace))
        index = rid_index(traces)  # raises CausalError on any violation
        assert len(index) > 100
        for rid, root in index.items():
            assert root.parent is None
            assert root.op.startswith("client_")
            # Every span of the rid is reachable from the root and in
            # the same trace (rid_index verified it; spot-check shape).
            members = [s for s in root.walk() if s.rid == rid]
            assert members[0] is root
            for span in members[1:]:
                assert span.op.startswith("shard_")

    def test_faults_and_retries_annotate_the_trees(self, chaos_trace):
        traces = build_traces(_events(chaos_trace))
        index = rid_index(traces)

        def events_in(root, name):
            return [
                e
                for s in root.walk()
                for e in s.events
                if e.get("event") == name
            ]

        with_fault = [r for r in index.values() if events_in(r, "net_fault")]
        with_retry = [r for r in index.values() if events_in(r, "op_retry")]
        with_dedup = [r for r in index.values() if events_in(r, "dedup_hit")]
        assert with_fault and with_retry and with_dedup
        # A dedup hit is always evidence inside a server-side span.
        for root in with_dedup:
            for span in root.walk():
                for event in span.events:
                    if event.get("event") == "dedup_hit":
                        assert span.op.startswith("shard_")
                        assert event["rid"] == span.rid

    def test_duplicated_delivery_yields_sibling_server_spans(self):
        # Force heavy duplication with no drops: duplicated deliveries
        # must appear as extra spans under the same client root, never
        # as a second root.
        cluster = Cluster(
            shards=3,
            durable=True,
            shard_policy=ShardPolicy(shard_capacity=64),
            faults=FaultPlan(seed=9, duplicate=0.5),
            retry=RetryPolicy(max_retries=8),
        )
        client = cluster.client()
        events = []

        class Collect:
            def on_event(self, event):
                events.append(event.to_dict())

        TRACER.activate([Collect()])
        for i in range(60):
            client.insert(_key(i), str(i))
        TRACER.deactivate()
        index = rid_index(build_traces(events))
        assert len(index) == 60
        multi = [
            root
            for root in index.values()
            if sum(s.op.startswith("shard_") for s in root.walk()) > 1
        ]
        assert multi, "50% duplication produced no redelivered op"

    def test_forward_chain_renders_as_nested_spans(self):
        # A cold client misaddresses: the owning shard's span must nest
        # under the forwarding shard's span (a chain, not siblings).
        cluster = Cluster(shards=4, shard_policy=ShardPolicy(shard_capacity=64))
        warm = cluster.client(warm=True)
        for i in range(40):
            warm.insert(_key(i), str(i))
        cold = cluster.client()
        events = []

        class Collect:
            def on_event(self, event):
                events.append(event.to_dict())

        TRACER.activate([Collect()])
        cold.get(_key(37))
        TRACER.deactivate()
        traces = build_traces(events)
        roots = [t.root for t in traces.values() if t.root.op == "client_get"]
        assert len(roots) == 1
        root = roots[0]
        shard_ops = [s for s in root.walk() if s.op == "shard_get"]
        assert len(shard_ops) >= 2  # forwarding hop + owner
        # Chain shape: each shard span has the previous as parent.
        assert shard_ops[0].parent == root.span_id
        assert shard_ops[1].parent == shard_ops[0].span_id
        text = render_tree(root)
        assert "forward" in text and "shard_get" in text

    def test_rid_index_rejects_two_roots(self):
        records = [
            {"seq": 1, "event": "span_end", "op": "client_insert",
             "span_id": 1, "parent": None, "trace": 1, "start_seq": 1,
             "rid": "c1-1"},
            {"seq": 2, "event": "span_end", "op": "client_insert",
             "span_id": 2, "parent": None, "trace": 1, "start_seq": 2,
             "rid": "c1-1"},
        ]
        with pytest.raises(CausalError):
            rid_index(build_traces(records))

    def test_hop_rows_cover_every_span(self, chaos_trace):
        traces = build_traces(_events(chaos_trace))
        index = rid_index(traces)
        rid, root = sorted(index.items())[0]
        rows = hop_rows(root)
        assert len(rows) == len(root.walk())
        assert rows[0]["hop"] == root.op


class TestFlightRecorder:
    def test_ring_is_bounded_and_dump_round_trips(self, tmp_path):
        FLIGHT.configure(str(tmp_path))
        TRACER.activate([])
        for i in range(10):
            with TRACER.span("op", i=i):
                pass
        path = FLIGHT.dump("unit-test", extra={"note": 1})
        TRACER.deactivate()
        assert path is not None
        document = json.loads(open(path).read())
        assert document["kind"] == "flight_dump"
        assert document["reason"] == "unit-test"
        assert document["extra"] == {"note": 1}
        # The dump reconstructs exactly like a JSONL trace.
        traces = build_traces(load_events(path))
        assert len(traces) == 10

    def test_dump_is_noop_unconfigured(self):
        TRACER.activate([])
        with TRACER.span("op"):
            pass
        assert FLIGHT.dump("nobody-home") is None
        TRACER.deactivate()

    def test_server_crash_dumps_flight(self, tmp_path):
        FLIGHT.configure(str(tmp_path))
        cluster = Cluster(shards=2, durable=True)
        client = cluster.client(warm=True)
        TRACER.activate([])
        client.insert("abc", "one")
        server = cluster.coordinator.servers[0]
        server.crash()
        TRACER.deactivate()
        server.restart()
        dumps = list(tmp_path.glob("flight-*-server-crash-shard-0.json"))
        assert len(dumps) == 1
        events = load_events(str(dumps[0]))
        assert any(e.get("event") == "server_crash" for e in events)

    def test_report_cli_reads_flight_dump(self, tmp_path, capsys):
        FLIGHT.configure(str(tmp_path))
        cluster = Cluster(shards=2, shard_policy=ShardPolicy(shard_capacity=64))
        client = cluster.client(warm=True)
        TRACER.activate([])
        client.insert("hello", "x")
        path = FLIGHT.dump("cli-round-trip")
        TRACER.deactivate()
        rid = f"c{client.client_id}-1"
        assert cli_main(["trace", "list", "--trace", path]) == 0
        assert rid in capsys.readouterr().out
        assert cli_main(["trace", "report", rid, "--trace", path]) == 0
        out = capsys.readouterr().out
        assert "client_insert" in out and "per-hop latency" in out

    def test_report_cli_unknown_rid_fails(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        TRACER.activate([JsonlTraceWriter(str(path))])
        with TRACER.span("lonely"):
            pass
        TRACER.deactivate()
        assert cli_main(["trace", "report", "c9-9", "--trace", str(path)]) == 1
        assert "no trace for rid" in capsys.readouterr().err


class TestDeterministicClose:
    def test_deactivate_closes_jsonl_writer(self, tmp_path):
        # Regression (ISSUE 6 satellite): the trace file must be
        # complete the moment deactivate() returns — crash-path tests
        # read it without ever exiting a `with trace(...)` block.
        path = tmp_path / "t.jsonl"
        writer = JsonlTraceWriter(str(path))
        TRACER.activate([writer])
        with TRACER.span("op"):
            pass
        TRACER.deactivate()
        assert writer.closed
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[-1]["event"] == "trace_end"
        writer.close()  # idempotent: second close is a no-op
        assert writer.closed

    def test_trace_context_manager_still_closes_once(self, tmp_path):
        from repro.obs import trace

        path = tmp_path / "t.jsonl"
        writer = JsonlTraceWriter(str(path))
        with trace(sinks=[writer]):
            with TRACER.span("op"):
                pass
        assert writer.closed


class TestQuantileExports:
    def _registry(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_latency", bounds=(1, 2, 4, 8))
        for value in (1, 1, 2, 3, 5, 7, 7, 7):
            hist.observe(value)
        return registry

    def test_prometheus_text_has_quantile_lines(self):
        text = prometheus_text(self._registry())
        assert 'repro_latency{quantile="0.5"}' in text
        assert 'repro_latency{quantile="0.95"}' in text
        assert 'repro_latency{quantile="0.99"}' in text

    def test_summary_rows_and_snapshot_carry_p95(self):
        registry = self._registry()
        (row,) = [
            r for r in summary_rows(registry) if r["metric"] == "repro_latency"
        ]
        assert row["p50"] <= row["p95"] <= row["p99"]
        snap = registry.snapshot()["histograms"]["repro_latency"]
        assert snap["p95"] == row["p95"]
