"""The reproduce harness: per-run artifact dirs and the BENCH trajectory.

One :func:`reproduce` call runs a *profile* of the standard suites
(:data:`~repro.bench.suites.SUITES`) and leaves two kinds of artifacts:

* a **run directory** ``<out_root>/<stamp>-<profile>/`` holding

  - ``manifest.json`` — the full config (profile, per-suite counts and
    seeds, interpreter/platform, package version, start time): enough
    to re-run the exact same workloads anywhere;
  - ``metrics.jsonl`` — one line per suite as it completes, with its
    wall time and result document (a partial run still leaves a
    readable prefix);
  - ``summary.json`` — every suite's results in one document;

* the refreshed **trajectory files** ``BENCH_core.json`` /
  ``BENCH_distributed.json`` / ``BENCH_chaos.json`` /
  ``BENCH_compact.json`` in ``bench_dir``
  (the repo root, when run from there) — the documents committed to git
  that ``scripts/bench_gate.py`` diffs a fresh run against in CI. Each
  carries a ``config`` block naming the profile/count/seed it was
  produced with, so the gate can refuse to compare apples to oranges.

Profiles: ``quick`` is the CI size (and the size the committed baseline
is generated at — comparability demands the same counts); ``full`` is
the historical local smoke size.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Optional, Union

from .. import __version__
from .suites import SUITES

__all__ = ["PROFILES", "reproduce", "write_bench_files"]

#: Per-suite workload sizes by profile. ``quick`` is what CI runs and
#: what the committed ``BENCH_*.json`` baselines are generated at.
PROFILES: dict[str, dict[str, int]] = {
    "quick": {
        "core": 2000,
        "distributed": 1500,
        "chaos": 600,
        "throughput": 2000,
        "compact": 6000,
        "serving": 1200,
    },
    "full": {
        "core": 4000,
        "distributed": 4000,
        "chaos": 2000,
        "throughput": 5000,
        "compact": 12000,
        "serving": 4000,
    },
}

#: Which suites feed which committed trajectory file.
BENCH_FILES: dict[str, tuple[str, ...]] = {
    "BENCH_core.json": ("core",),
    "BENCH_distributed.json": ("distributed",),
    "BENCH_chaos.json": ("chaos", "throughput"),
    "BENCH_compact.json": ("compact",),
    "BENCH_serving.json": ("serving",),
}


def _manifest(profile: str, counts: dict, seeds: dict, suites: list) -> dict:
    return {
        "kind": "reproduce_manifest",
        "profile": profile,
        "suites": suites,
        "counts": {name: counts[name] for name in suites},
        "seeds": {name: seeds[name] for name in suites},
        "version": __version__,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }


def _write_json(path: Path, document: dict) -> None:
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def write_bench_files(
    bench_dir: Path,
    results: dict[str, dict],
    configs: dict[str, dict],
) -> list[Path]:
    """Regenerate the committed ``BENCH_*.json`` files from suite results.

    Only files whose *every* feeding suite is present in ``results`` are
    written (a partial ``--suite`` run refreshes a partial trajectory).
    Returns the paths written.
    """
    bench_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for filename, feeding in BENCH_FILES.items():
        if not all(name in results for name in feeding):
            continue
        merged: dict = {}
        for name in feeding:
            merged.update(results[name])
        document = {
            "benchmark": filename[len("BENCH_"):-len(".json")],
            "version": __version__,
            "python": platform.python_version(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "config": {name: configs[name] for name in feeding},
            "results": merged,
        }
        path = bench_dir / filename
        _write_json(path, document)
        written.append(path)
    return written


def reproduce(
    profile: str = "quick",
    out_root: Union[str, Path] = "benchmarks/results/runs",
    bench_dir: Optional[Union[str, Path]] = ".",
    suites: Optional[list[str]] = None,
    counts: Optional[dict[str, int]] = None,
    seed: Optional[int] = None,
    trie_backend: str = "cells",
    echo: bool = True,
) -> dict:
    """Run a benchmark profile into a fresh artifact directory.

    Parameters
    ----------
    profile:
        A :data:`PROFILES` key fixing per-suite workload sizes.
    out_root:
        Where run directories accumulate (one per invocation).
    bench_dir:
        Where the ``BENCH_*.json`` trajectory files are refreshed
        (``None`` skips refreshing them — pure artifact mode).
    suites:
        Subset of suite names to run (default: all four, in the stable
        registry order).
    counts:
        Per-suite count overrides on top of the profile.
    seed:
        Override every suite's default seed (default: each suite keeps
        its own historical seed, which is what the committed baselines
        use).
    trie_backend:
        Trie representation the suites build their files with
        (``"cells"`` or ``"compact"``). Recorded in every suite's
        ``config`` block, so a fresh run on one backend can never be
        gated against a baseline committed on the other. The
        ``compact`` suite itself always measures both.
    echo:
        Print progress and artifact paths as the run advances.

    Returns a dict with the run directory, per-suite results, and the
    trajectory paths written.
    """
    if profile not in PROFILES:
        raise ValueError(
            f"unknown profile {profile!r} (choose from {sorted(PROFILES)})"
        )
    chosen = list(SUITES) if suites is None else list(suites)
    for name in chosen:
        if name not in SUITES:
            raise ValueError(
                f"unknown suite {name!r} (choose from {sorted(SUITES)})"
            )
    sizes = dict(PROFILES[profile])
    if counts:
        sizes.update(counts)
    seeds = {
        name: (SUITES[name][1] if seed is None else seed) for name in chosen
    }

    stamp = time.strftime("%Y%m%dT%H%M%SZ", time.gmtime())
    out_root = Path(out_root)
    run_dir = out_root / f"{stamp}-{profile}"
    # Same-second reruns get a numeric suffix instead of clobbering.
    n = 1
    while run_dir.exists():
        n += 1
        run_dir = out_root / f"{stamp}-{profile}-{n}"
    run_dir.mkdir(parents=True)

    manifest = _manifest(profile, sizes, seeds, chosen)
    _write_json(run_dir / "manifest.json", manifest)
    if echo:
        print(f"run dir: {run_dir}")

    results: dict[str, dict] = {}
    configs: dict[str, dict] = {}
    metrics_path = run_dir / "metrics.jsonl"
    with open(metrics_path, "w", encoding="utf-8") as metrics:
        for name in chosen:
            runner = SUITES[name][0]
            if echo:
                print(f"  {name} (count={sizes[name]}, seed={seeds[name]}) ...")
            start = time.perf_counter()
            result = runner(
                count=sizes[name],
                seed=seeds[name],
                trie_backend=trie_backend,
            )
            wall = time.perf_counter() - start
            results[name] = result
            configs[name] = {
                "profile": profile,
                "count": sizes[name],
                "seed": seeds[name],
                "trie_backend": trie_backend,
            }
            json.dump(
                {
                    "suite": name,
                    "count": sizes[name],
                    "seed": seeds[name],
                    "wall_s": round(wall, 3),
                    "results": result,
                },
                metrics,
                sort_keys=True,
            )
            metrics.write("\n")
            metrics.flush()
            if echo:
                print(f"    done in {wall:.2f}s")

    _write_json(
        run_dir / "summary.json",
        {"manifest": manifest, "results": results},
    )

    written: list[Path] = []
    if bench_dir is not None:
        written = write_bench_files(Path(bench_dir), results, configs)
        if echo:
            for path in written:
                print(f"wrote {path}")

    return {
        "run_dir": str(run_dir),
        "results": results,
        "configs": configs,
        "bench_files": [str(p) for p in written],
    }
