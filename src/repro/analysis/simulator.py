"""Workload drivers.

Thin helpers that push key sequences through a file and collect the
evolution of the paper's metrics — the raw material of Figures 10-11's
curves and of the oscillation discussion in Section 4.5.
"""

from __future__ import annotations

from collections.abc import Iterable

from .metrics import file_metrics

__all__ = ["insert_all", "load_series", "delete_all"]


def insert_all(file, keys: Iterable[str], value: object = None):
    """Insert every key (each with ``value``); returns the file."""
    for key in keys:
        file.insert(key, value)
    return file


def delete_all(file, keys: Iterable[str]):
    """Delete every key; returns the file."""
    for key in keys:
        file.delete(key)
    return file


def load_series(
    file, keys: Iterable[str], every: int = 100
) -> list[dict[str, float]]:
    """Insert keys, sampling :func:`file_metrics` every ``every`` inserts.

    The returned rows carry an ``inserted`` count; the final state is
    always sampled.
    """
    rows: list[dict[str, float]] = []
    inserted = 0
    for key in keys:
        file.insert(key)
        inserted += 1
        if inserted % every == 0:
            row = file_metrics(file)
            row["inserted"] = inserted
            rows.append(row)
    if not rows or rows[-1]["inserted"] != inserted:
        row = file_metrics(file)
        row["inserted"] = inserted
        rows.append(row)
    return rows
