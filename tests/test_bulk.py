"""Bottom-up TH bulk loading."""

import pytest

from repro import CapacityError, SplitPolicy, THFile
from repro.core.bulk import bulk_load_th


class TestBulkLoad:
    def test_compact_load(self, sorted_keys):
        f = bulk_load_th(((k, None) for k in sorted_keys), bucket_capacity=10)
        f.check()
        assert f.load_factor() > 0.95
        assert list(f.keys()) == sorted_keys

    def test_matches_incremental_compact_build(self, sorted_keys):
        bulk = bulk_load_th(((k, None) for k in sorted_keys), bucket_capacity=10)
        incremental = THFile(10, SplitPolicy.thcl_ascending(0))
        for k in sorted_keys:
            incremental.insert(k)
        assert bulk.bucket_count() == incremental.bucket_count()
        assert bulk.trie_size() == incremental.trie_size()
        assert bulk.trie.boundaries() == incremental.trie.boundaries()

    def test_partial_fill(self, sorted_keys):
        f = bulk_load_th(
            ((k, None) for k in sorted_keys), bucket_capacity=10, fill=0.7
        )
        f.check()
        assert f.load_factor() == pytest.approx(0.7, abs=0.05)

    def test_values_survive(self, sorted_keys):
        f = bulk_load_th(
            ((k, i) for i, k in enumerate(sorted_keys)), bucket_capacity=8
        )
        for i, k in enumerate(sorted_keys):
            assert f.get(k) == i

    def test_updatable_after_load(self, sorted_keys, generator):
        f = bulk_load_th(((k, None) for k in sorted_keys), bucket_capacity=10)
        for k in generator.uniform(100, salt=3):
            if not f.contains(k):
                f.insert(k)
        f.delete(sorted_keys[0])
        f.check()

    def test_reconstruction_headers_present(self, sorted_keys):
        from repro.core.reconstruct import reconstruct_trie

        f = bulk_load_th(((k, None) for k in sorted_keys), bucket_capacity=10)
        rebuilt = reconstruct_trie(f.store, f.alphabet)
        for k in sorted_keys[:60]:
            assert rebuilt.search(k).bucket == f.trie.search(k).bucket

    def test_unsorted_rejected(self):
        with pytest.raises(CapacityError):
            bulk_load_th([("b", None), ("a", None)])

    def test_duplicates_rejected(self):
        with pytest.raises(CapacityError):
            bulk_load_th([("a", None), ("a", None)])

    def test_invalid_fill(self):
        with pytest.raises(CapacityError):
            bulk_load_th([("a", None)], fill=0.0)

    def test_basic_policy_rejected(self):
        with pytest.raises(CapacityError):
            bulk_load_th([("a", None)], policy=SplitPolicy.basic_th())

    def test_single_record(self):
        f = bulk_load_th([("only", 1)])
        assert f.get("only") == 1
        assert f.bucket_count() == 1
        assert f.trie_size() == 0

    def test_empty_input(self):
        f = bulk_load_th([])
        assert len(f) == 0
        f.check()

    def test_space_digit_keys(self):
        # Interior-space keys exercise the padded split-string path.
        f = bulk_load_th(
            [("ab", 1), ("ab b", 2), ("ab c", 3), ("abc", 4)],
            bucket_capacity=2,
        )
        f.check()
        for k, v in [("ab", 1), ("ab b", 2), ("ab c", 3), ("abc", 4)]:
            assert f.get(k) == v


class TestGuaranteedFill:
    """Regression: ``fill`` is a floor, so the bucket size must ceil.

    ``round`` used banker's rounding: ``fill=0.5, b=5`` produced
    2-record buckets (a 0.4 load), violating the guarantee that every
    full bucket holds at least ``fill * b`` records.
    """

    def test_half_fill_odd_capacity_ceils(self, sorted_keys):
        f = bulk_load_th(
            ((k, None) for k in sorted_keys), bucket_capacity=5, fill=0.5
        )
        f.check()
        sizes = [len(f.store.peek(a)) for a in sorted(f.store.live_addresses())]
        # Every bucket except the remainder tail meets the floor.
        assert all(s >= 3 for s in sizes[:-1])
        assert max(sizes) == 3

    def test_fill_floor_holds_across_fractions(self, sorted_keys):
        import math

        for b, fill in [(5, 0.5), (7, 0.3), (9, 0.6), (10, 0.55), (3, 0.34)]:
            f = bulk_load_th(
                ((k, None) for k in sorted_keys), bucket_capacity=b, fill=fill
            )
            f.check()
            floor = math.ceil(fill * b - 1e-9)
            sizes = [
                len(f.store.peek(a)) for a in sorted(f.store.live_addresses())
            ]
            assert all(s >= floor for s in sizes[:-1]), (b, fill, sizes)
            assert list(f.keys()) == sorted_keys

    def test_full_fill_never_overflows(self, sorted_keys):
        f = bulk_load_th(
            ((k, None) for k in sorted_keys), bucket_capacity=4, fill=1.0
        )
        f.check()
        assert all(
            len(f.store.peek(a)) <= 4 for a in f.store.live_addresses()
        )

    def test_empty_iterable_yields_valid_empty_file(self):
        f = bulk_load_th(iter([]), bucket_capacity=5, fill=0.5)
        f.check()
        assert len(f) == 0
        assert list(f.keys()) == []
        assert f.bucket_count() == 1
        # And the empty file accepts updates afterwards.
        f.insert("first")
        assert f.get("first") is None

    def test_single_record_any_fill(self):
        f = bulk_load_th([("solo", 7)], bucket_capacity=5, fill=0.5)
        f.check()
        assert len(f) == 1
        assert f.get("solo") == 7
