"""Analytic estimates for the measured quantities.

The paper leans on known results (and cites /JAC88/, /REG87/ for
Mellin-transform trie analyses). This module provides the closed-form
estimates a practitioner would compare simulations against:

* random-insertion load factor ``ln 2 ~ 0.693`` — the classic B-tree /
  dynamic-hashing steady state that Section 3.1's "about 70%" refers to;
* deterministic ordered loads: THCL leaves exactly ``b - d`` records per
  closed bucket, so ``a = (b - d)/b`` ascending, and the descending
  mirror ``a = (moved)/b``;
* expected bucket count ``N + 1 = ceil(x / (a b))``;
* balanced-trie depth ``~ log2 M`` and the random-trie expectation
  ``~ log2 N + gamma`` digits of discrimination for uniform digits;
* index byte sizes from the layout constants.

These are estimates, not theorems about this implementation; the test
suite checks the simulation lands within honest tolerances of them.
"""

from __future__ import annotations

import math

from ..storage.layout import Layout

__all__ = [
    "RANDOM_LOAD_FACTOR",
    "expected_load_factor",
    "expected_bucket_count",
    "expected_trie_depth",
    "expected_index_bytes",
    "compare_with_theory",
]

#: The steady-state load of half-splitting under random insertions.
RANDOM_LOAD_FACTOR = math.log(2)


def expected_load_factor(
    order: str, bucket_capacity: int, d: int = 0, deterministic: bool = True
) -> float:
    """Predicted bucket load factor.

    ``order`` is ``'random'``, ``'ascending'`` or ``'descending'``;
    ``d`` is the paper's distance parameter (Figs 10-11). Deterministic
    THCL ordered loads are exact; the random case and non-deterministic
    ordered cases return the ln-2 style estimates.
    """
    b = bucket_capacity
    if order == "random":
        return RANDOM_LOAD_FACTOR
    if not deterministic:
        # Basic TH: between the B-tree's 0.5 and ~0.73 depending on m;
        # use the midpoint of the paper's reported band.
        return 0.66
    if order == "ascending":
        return (b - d) / b
    if order == "descending":
        # m = 1, bounding at m+1+d: at least b-d records reach every
        # closed bucket; randomness adds a little, so this is a floor.
        return (b - d) / b
    raise ValueError(f"unknown order {order!r}")


def expected_bucket_count(records: int, bucket_capacity: int, load: float) -> int:
    """Buckets needed for ``records`` at load ``load``."""
    return math.ceil(records / (bucket_capacity * load))


def expected_trie_depth(cells: int, balanced: bool = True) -> float:
    """Node-search depth: ``log2 M`` balanced, ~2x that typical unbalanced."""
    if cells <= 1:
        return float(cells)
    base = math.log2(cells)
    return base if balanced else 2.0 * base


def expected_index_bytes(
    buckets: int, growth_rate: float = 1.0, layout: Layout = None
) -> int:
    """Trie bytes for a file of ``buckets`` buckets (M = s * N cells)."""
    layout = layout or Layout()
    return round(layout.cell_bytes * growth_rate * (buckets - 1))


def compare_with_theory(file, order: str, d: int = 0) -> dict[str, float]:
    """Measured vs predicted for one loaded file (used by tests/benches)."""
    predicted_load = expected_load_factor(
        order,
        file.capacity,
        d=d,
        deterministic=getattr(file.policy, "bounding_offset", None) == 1,
    )
    predicted_buckets = expected_bucket_count(
        len(file), file.capacity, predicted_load
    )
    return {
        "measured_load": file.load_factor(),
        "predicted_load": predicted_load,
        "measured_buckets": file.bucket_count(),
        "predicted_buckets": predicted_buckets,
        "measured_depth": file.trie.depth(),
        "predicted_balanced_depth": expected_trie_depth(file.trie_size()),
    }
