"""Bottom-up TH bulk loading."""

import pytest

from repro import CapacityError, SplitPolicy, THFile
from repro.core.bulk import bulk_load_th


class TestBulkLoad:
    def test_compact_load(self, sorted_keys):
        f = bulk_load_th(((k, None) for k in sorted_keys), bucket_capacity=10)
        f.check()
        assert f.load_factor() > 0.95
        assert list(f.keys()) == sorted_keys

    def test_matches_incremental_compact_build(self, sorted_keys):
        bulk = bulk_load_th(((k, None) for k in sorted_keys), bucket_capacity=10)
        incremental = THFile(10, SplitPolicy.thcl_ascending(0))
        for k in sorted_keys:
            incremental.insert(k)
        assert bulk.bucket_count() == incremental.bucket_count()
        assert bulk.trie_size() == incremental.trie_size()
        assert bulk.trie.boundaries() == incremental.trie.boundaries()

    def test_partial_fill(self, sorted_keys):
        f = bulk_load_th(
            ((k, None) for k in sorted_keys), bucket_capacity=10, fill=0.7
        )
        f.check()
        assert f.load_factor() == pytest.approx(0.7, abs=0.05)

    def test_values_survive(self, sorted_keys):
        f = bulk_load_th(
            ((k, i) for i, k in enumerate(sorted_keys)), bucket_capacity=8
        )
        for i, k in enumerate(sorted_keys):
            assert f.get(k) == i

    def test_updatable_after_load(self, sorted_keys, generator):
        f = bulk_load_th(((k, None) for k in sorted_keys), bucket_capacity=10)
        for k in generator.uniform(100, salt=3):
            if not f.contains(k):
                f.insert(k)
        f.delete(sorted_keys[0])
        f.check()

    def test_reconstruction_headers_present(self, sorted_keys):
        from repro.core.reconstruct import reconstruct_trie

        f = bulk_load_th(((k, None) for k in sorted_keys), bucket_capacity=10)
        rebuilt = reconstruct_trie(f.store, f.alphabet)
        for k in sorted_keys[:60]:
            assert rebuilt.search(k).bucket == f.trie.search(k).bucket

    def test_unsorted_rejected(self):
        with pytest.raises(CapacityError):
            bulk_load_th([("b", None), ("a", None)])

    def test_duplicates_rejected(self):
        with pytest.raises(CapacityError):
            bulk_load_th([("a", None), ("a", None)])

    def test_invalid_fill(self):
        with pytest.raises(CapacityError):
            bulk_load_th([("a", None)], fill=0.0)

    def test_basic_policy_rejected(self):
        with pytest.raises(CapacityError):
            bulk_load_th([("a", None)], policy=SplitPolicy.basic_th())

    def test_single_record(self):
        f = bulk_load_th([("only", 1)])
        assert f.get("only") == 1
        assert f.bucket_count() == 1
        assert f.trie_size() == 0

    def test_empty_input(self):
        f = bulk_load_th([])
        assert len(f) == 0
        f.check()

    def test_space_digit_keys(self):
        # Interior-space keys exercise the padded split-string path.
        f = bulk_load_th(
            [("ab", 1), ("ab b", 2), ("ab c", 3), ("abc", 4)],
            bucket_capacity=2,
        )
        f.check()
        for k, v in [("ab", 1), ("ab b", 2), ("ab c", 3), ("abc", 4)]:
            assert f.get(k) == v
