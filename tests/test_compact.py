"""The compact trie backend, differentially tested against the cell trie.

Three layers of assurance over :mod:`repro.core.compact`:

* a differential suite: every operation (insert / get / delete / split /
  scan / cursor) mirrored on a cells-backed and a compact-backed
  :class:`THFile` fed the same seeded workload must produce identical
  results, identical boundary models, byte-identical serialised tries,
  and byte-identical Section-6 reconstructions from bucket headers
  alone;
* a Hypothesis stateful machine (:class:`CompactAgainstCells`, modelled
  on the chaos machine) driving mixed point and batch operations against
  both backends, with the registered ``repro.check`` audits run at FULL
  level inside the machine;
* batch-API contract tests: ``get_many`` / ``put_many`` equivalence
  with per-key loops on TH / THCL / MLTH, empty / duplicate / unsorted
  batches, atomicity across splits triggered mid-batch, durable batches
  surviving reopen, and distributed batches spanning shard boundaries
  under injected faults.
"""

import random
import string

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro import Cluster, DuplicateKeyError, ShardPolicy, THFile
from repro.check import AuditLevel, audit
from repro.core.compact import CompactTrie
from repro.core.cursor import Cursor
from repro.core.mlth import MLTHFile
from repro.core.policies import SplitPolicy
from repro.core.reconstruct import reconstruct_trie
from repro.distributed import FaultPlan, RetryPolicy
from repro.storage.recovery import DurableFile
from repro.storage.serializer import serialize_trie
from repro.storage.wal import StableStore
from repro.workloads import KeyGenerator


# ----------------------------------------------------------------------
# Workload machinery
# ----------------------------------------------------------------------
def _word(rng, lo=2, hi=8):
    return "".join(
        rng.choice(string.ascii_lowercase) for _ in range(rng.randint(lo, hi))
    )


def mixed_ops(n, seed):
    """A deterministic op list: ~55% insert, ~25% delete, ~20% put."""
    rng = random.Random(seed)
    model = {}
    ops = []
    while len(ops) < n:
        r = rng.random()
        if model and r < 0.25:
            key = rng.choice(sorted(model))
            del model[key]
            ops.append(("delete", key, None))
        elif model and r < 0.45:
            key = rng.choice(sorted(model))
            value = _word(rng)
            model[key] = value
            ops.append(("put", key, value))
        else:
            key = _word(rng)
            if key in model:
                continue
            value = _word(rng)
            model[key] = value
            ops.append(("insert", key, value))
    return ops


def pair(b=6, policy=None):
    """One cells-backed and one compact-backed file, same parameters."""
    return (
        THFile(bucket_capacity=b, policy=policy, trie_backend="cells"),
        THFile(bucket_capacity=b, policy=policy, trie_backend="compact"),
    )


def apply_op(f, kind, key, value):
    if kind == "insert":
        f.insert(key, value)
    elif kind == "put":
        f.put(key, value)
    else:
        return f.delete(key)
    return None


def assert_mirrored(cells, compact):
    """The full identity contract between the two backends."""
    assert type(compact.trie) is CompactTrie
    assert len(cells) == len(compact)
    assert list(cells.items()) == list(compact.items())
    assert (
        cells.trie.to_model().boundaries
        == compact.trie.to_model().boundaries
    )
    assert serialize_trie(cells.trie) == serialize_trie(compact.trie)
    cells.check()
    compact.check()


def assert_reconstruction_oracle(cells, compact):
    """Section 6: both bucket files rebuild byte-identical tries.

    The rebuilt trie must agree with the live trie on the *mapping* for
    every live key (the contract the ``repro.check`` PARANOID audit
    enforces), not on the exact boundary list: a deletion that reverts
    an emptied leaf to nil (§2.4 basic method) leaves a boundary with no
    bucket-header witness, so a headers-only reconstruction legitimately
    omits it — the nil region holds no records either way.
    """
    rebuilt_cells = reconstruct_trie(cells.store, cells.alphabet)
    rebuilt_compact = reconstruct_trie(compact.store, compact.alphabet)
    assert serialize_trie(rebuilt_cells) == serialize_trie(rebuilt_compact)
    rebuilt_model = rebuilt_compact.to_model()
    live_model = compact.trie.to_model()
    for address in compact.store.live_addresses():
        for key in compact.store.peek(address).keys:
            assert rebuilt_model.lookup(key) == live_model.lookup(key)


# ----------------------------------------------------------------------
# Differential suite
# ----------------------------------------------------------------------
class TestDifferential:
    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_seeded_mixed_workload_mirrors(self, seed):
        cells, compact = pair(b=4)
        for i, (kind, key, value) in enumerate(mixed_ops(400, seed)):
            assert apply_op(cells, kind, key, value) == apply_op(
                compact, kind, key, value
            )
            if i % 80 == 0:
                assert_mirrored(cells, compact)
        assert_mirrored(cells, compact)
        assert_reconstruction_oracle(cells, compact)

    def test_point_lookups_and_duplicates_mirror(self):
        cells, compact = pair(b=4)
        rng = random.Random(5)
        keys = sorted({_word(rng) for _ in range(120)})
        for k in keys:
            cells.insert(k, k.upper())
            compact.insert(k, k.upper())
        for f in (cells, compact):
            with pytest.raises(DuplicateKeyError):
                f.insert(keys[0], "again")
        probes = keys + [_word(rng) for _ in range(40)]
        for k in probes:
            assert cells.contains(k) == compact.contains(k)
            if cells.contains(k):
                assert cells.get(k) == compact.get(k)

    def test_split_heavy_ascending_insertions_mirror(self):
        # Sorted insertion is the paper's worst case for splits: every
        # bucket overflows on its right edge, exercising the boundary
        # split path on both backends in lockstep.
        cells, compact = pair(b=4)
        keys = sorted(KeyGenerator(21).uniform(300))
        for k in keys:
            cells.insert(k)
            compact.insert(k)
        assert compact.bucket_count() > 10
        assert_mirrored(cells, compact)
        assert_reconstruction_oracle(cells, compact)

    def test_range_scans_mirror(self):
        cells, compact = pair(b=5)
        keys = KeyGenerator(9).uniform(250)
        for k in keys:
            cells.insert(k, k[::-1])
            compact.insert(k, k[::-1])
        ordered = sorted(keys)
        spans = [
            (ordered[10], ordered[60]),
            (ordered[0], ordered[-1]),
            ("a", "m"),
            ("zzz", "zzzz"),  # empty span
        ]
        for lo, hi in spans:
            assert list(cells.range_items(lo, hi)) == list(
                compact.range_items(lo, hi)
            )
            assert list(cells.range_items(lo, hi)) == list(
                compact.bulk_range_items(lo, hi)
            )

    def test_cursor_walks_mirror(self):
        cells, compact = pair(b=5)
        for k in KeyGenerator(17).uniform(200):
            cells.insert(k, k)
            compact.insert(k, k)

        def walk(f):
            cursor = Cursor(f)
            out = []
            ok = cursor.first()
            while ok:
                out.append(cursor.item())
                ok = cursor.next()
            return out

        assert walk(cells) == walk(compact)
        mid = sorted(compact.keys())[len(compact) // 2]
        c1, c2 = Cursor(cells), Cursor(compact)
        assert c1.seek(mid) == c2.seek(mid)
        assert c1.item() == c2.item()
        assert c1.next() == c2.next()
        assert c1.item() == c2.item()

    def test_full_audits_pass_on_both_backends(self):
        cells, compact = pair(b=4)
        for kind, key, value in mixed_ops(250, 13):
            apply_op(cells, kind, key, value)
            apply_op(compact, kind, key, value)
        assert audit(cells.trie, level=AuditLevel.FULL).violations == []
        assert audit(compact.trie, level=AuditLevel.FULL).violations == []
        assert (
            audit(compact.trie, level=AuditLevel.PARANOID).violations == []
        )

    def test_compact_audit_detects_column_corruption(self):
        # The registered CompactTrie audit must actually bite: flip one
        # packed-coordinate word and the FULL sweep reports it.
        _, compact = pair(b=4)
        for k in KeyGenerator(3).uniform(60):
            compact.insert(k)
        table = compact.trie.cells
        victim = next(
            i for i in range(len(table._md)) if table._md[i] >= 0
        )
        table._md[victim] ^= 1 << 40
        report = audit(compact.trie, level=AuditLevel.FULL)
        assert any(
            v.code == "AUD-COMPACT-COLUMNS" for v in report.violations
        )


# ----------------------------------------------------------------------
# Stateful differential machine
# ----------------------------------------------------------------------
keys_st = st.text(alphabet="abcdefgh", min_size=1, max_size=6)
values_st = st.text(alphabet="nopqrstu", min_size=0, max_size=5)
batch_st = st.lists(st.tuples(keys_st, values_st), max_size=12)


class CompactAgainstCells(RuleBasedStateMachine):
    """Mixed point and batch ops against both backends and a dict."""

    @initialize(
        seed=st.integers(min_value=0, max_value=2**16),
        b=st.sampled_from([4, 8]),
    )
    def setup(self, seed, b):
        self.cells = THFile(bucket_capacity=b, trie_backend="cells")
        self.compact = THFile(bucket_capacity=b, trie_backend="compact")
        self.model = {}

    @rule(key=keys_st, value=values_st)
    def insert(self, key, value):
        if key in self.model:
            for f in (self.cells, self.compact):
                with pytest.raises(DuplicateKeyError):
                    f.insert(key, value)
        else:
            self.cells.insert(key, value)
            self.compact.insert(key, value)
            self.model[key] = value

    @rule(key=keys_st, value=values_st)
    def put(self, key, value):
        self.cells.put(key, value)
        self.compact.put(key, value)
        self.model[key] = value

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def delete_existing(self, data):
        key = data.draw(st.sampled_from(sorted(self.model)))
        expected = self.model.pop(key)
        assert self.cells.delete(key) == expected
        assert self.compact.delete(key) == expected

    @rule(key=keys_st)
    def lookup(self, key):
        assert self.cells.contains(key) == (key in self.model)
        assert self.compact.contains(key) == (key in self.model)
        if key in self.model:
            assert self.cells.get(key) == self.model[key]
            assert self.compact.get(key) == self.model[key]

    @rule(batch=batch_st)
    def put_many_batch(self, batch):
        self.cells.put_many(batch)
        self.compact.put_many(batch)
        self.model.update(dict(batch))

    @rule(batch=st.lists(keys_st, max_size=12))
    def get_many_batch(self, batch):
        expected = {k: self.model[k] for k in batch if k in self.model}
        assert self.cells.get_many(batch) == expected
        assert self.compact.get_many(batch) == expected

    @precondition(lambda self: self.cells.bucket_count() > 1)
    @rule()
    def audit_full(self):
        # The registered audits, FULL level, inside the machine: the
        # CompactTrie registration replaces the inherited Trie audit and
        # adds the column-layout invariants.
        assert audit(self.cells.trie, level=AuditLevel.FULL).violations == []
        assert (
            audit(self.compact.trie, level=AuditLevel.FULL).violations == []
        )

    @invariant()
    def sizes_agree(self):
        assert len(self.cells) == len(self.compact) == len(self.model)

    def teardown(self):
        assert dict(self.cells.items()) == self.model
        assert_mirrored(self.cells, self.compact)
        assert_reconstruction_oracle(self.cells, self.compact)


TestCompactStateful = CompactAgainstCells.TestCase
TestCompactStateful.settings = settings(deadline=None)


# ----------------------------------------------------------------------
# Batch-API contracts
# ----------------------------------------------------------------------
def _make_engine(name, backend="compact"):
    if name == "th":
        return THFile(bucket_capacity=6, trie_backend=backend)
    if name == "thcl":
        return THFile(
            bucket_capacity=6,
            policy=SplitPolicy.thcl_ascending(),
            trie_backend=backend,
        )
    return MLTHFile(bucket_capacity=6, page_capacity=8)


def _canonical(batch):
    """The order put_many applies: sorted, unique, last value wins."""
    last = {}
    for key, value in batch:
        last[key] = value
    return sorted(last.items())


class TestBatchContracts:
    @pytest.mark.parametrize("engine", ["th", "thcl", "mlth"])
    def test_put_many_equivalent_to_per_key_loop(self, engine):
        rng = random.Random(41)
        batch = [(_word(rng, 2, 6), _word(rng)) for _ in range(150)]
        rng.shuffle(batch)  # unsorted, with natural duplicates
        batched = _make_engine(engine)
        batched.put_many(batch)
        looped = _make_engine(engine)
        for key, value in _canonical(batch):
            looped.put(key, value)
        assert list(batched.items()) == list(looped.items())
        batched.check()

    @pytest.mark.parametrize("engine", ["th", "thcl", "mlth"])
    def test_get_many_matches_per_key_gets(self, engine):
        rng = random.Random(43)
        f = _make_engine(engine)
        keys = sorted({_word(rng, 2, 6) for _ in range(120)})
        for k in keys:
            f.put(k, k[::-1])
        absent = [_word(rng, 9, 11) for _ in range(20)]
        probes = keys + absent + keys[:10]  # duplicates too
        rng.shuffle(probes)
        assert f.get_many(probes) == {
            k: f.get(k) for k in probes if f.contains(k)
        }

    @pytest.mark.parametrize("engine", ["th", "thcl", "mlth"])
    def test_empty_and_noop_batches(self, engine):
        f = _make_engine(engine)
        f.put("anchor", "v")
        f.put_many([])
        assert f.get_many([]) == {}
        assert list(f.items()) == [("anchor", "v")]

    def test_duplicate_keys_in_batch_last_wins(self):
        f = _make_engine("th")
        f.put_many([("same", "first"), ("other", "x"), ("same", "last")])
        assert f.get("same") == "last"
        assert len(f) == 2

    def test_batch_atomic_across_splits_mid_batch(self):
        # One batch large enough to split buckets repeatedly while it is
        # being applied must land the same structure as per-key inserts.
        keys = sorted(KeyGenerator(31).uniform(200))
        batched = THFile(bucket_capacity=4, trie_backend="compact")
        batched.put_many([(k, None) for k in keys])
        looped = THFile(bucket_capacity=4, trie_backend="compact")
        for k in keys:
            looped.put(k, None)
        assert batched.bucket_count() > 10
        assert list(batched.items()) == list(looped.items())
        assert serialize_trie(batched.trie) == serialize_trie(looped.trie)
        batched.check()

    def test_durable_batch_survives_reopen(self):
        store = StableStore()
        f = DurableFile.open(
            store, engine="th", capacity=4, trie_backend="compact"
        )
        rng = random.Random(47)
        batch = [(_word(rng, 2, 6), _word(rng)) for _ in range(80)]
        f.put_many(batch)
        expected = dict(f.items())
        f.close()
        reopened = DurableFile.open(
            store, engine="th", capacity=4, trie_backend="compact"
        )
        assert dict(reopened.items()) == expected
        assert type(reopened.file.trie) is CompactTrie
        reopened.check()

    def test_distributed_batches_span_shards_under_faults(self):
        plan = FaultPlan(seed=2, drop=0.01, duplicate=0.01, delay=0.01)
        cluster = Cluster(
            shards=3,
            durable=True,
            shard_policy=ShardPolicy(shard_capacity=24),
            faults=plan,
            retry=RetryPolicy(max_retries=12),
            trie_backend="compact",
        )
        client = cluster.client()
        rng = random.Random(53)
        model = {}
        for start in range(0, 180, 30):
            batch = [(_word(rng, 2, 7), _word(rng)) for _ in range(30)]
            client.put_many(batch)
            model.update(dict(batch))
        # Scale-out has happened, so batches necessarily spanned shards.
        assert len(cluster.coordinator.servers) > 3
        absent = [_word(rng, 9, 11) for _ in range(15)]
        got = client.get_many(list(model) + absent)
        assert got == model
        plan.heal()
        cluster.check()
        assert cluster.router.duplicate_applies() == 0
