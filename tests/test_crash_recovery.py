"""Crash-point sweeps and recovery correctness for the durability stack.

The headline assertion, swept over every physical-write crash point of a
mixed workload (inserts, overwrites, deletes — driving splits, merges,
borrows, redistributions and page splits):

* opening the store after the crash recovers **every acknowledged
  operation** (an operation that returned before the crash is never
  lost);
* **no phantom keys**: the recovered state is exactly the model of the
  acknowledged operations, or of those plus the single in-flight
  operation (whose record may legitimately have reached the medium in a
  torn-but-complete last block);
* the recovered file passes its deep structural ``check()``.

The sweep uses :class:`RecordingStableStore`, which captures the durable
image at every crash opportunity during *one* workload run, so crashing
at every Nth write costs one run plus one recovery per point.
"""

from __future__ import annotations

import random
import string
import struct

import pytest

from repro.core.boundaries import gap_index
from repro.core.errors import CrashError, RecoveryError, StorageError
from repro.core.policies import SplitPolicy
from repro.core.reconstruct import reconstruct_model
from repro.obs.tracer import trace
from repro.storage.crashpoints import CrashingStore, RecordingStableStore
from repro.storage.recovery import DurableFile
from repro.storage.wal import (
    REC_INSERT,
    StableStore,
    encode_record,
    read_records,
)

# ----------------------------------------------------------------------
# Workload machinery
# ----------------------------------------------------------------------
SWEEP_CONFIGS = {
    "th": ("th", dict(capacity=4, policy=SplitPolicy(merge="rotations"))),
    "thcl": ("th", dict(capacity=4, policy=SplitPolicy.thcl_redistributing())),
    "mlth": (
        "mlth",
        dict(capacity=4, page_capacity=8, policy=SplitPolicy.thcl(merge="guaranteed")),
    ),
}


def _word(rng, lo=2, hi=8):
    return "".join(rng.choice(string.ascii_lowercase) for _ in range(rng.randint(lo, hi)))


def mixed_ops(n, seed):
    """A deterministic op list: ~55% insert, ~25% delete, ~20% put."""
    rng = random.Random(seed)
    model = {}
    ops = []
    while len(ops) < n:
        r = rng.random()
        if model and r < 0.25:
            key = rng.choice(sorted(model))
            del model[key]
            ops.append(("delete", key, None))
        elif model and r < 0.45:
            key = rng.choice(sorted(model))
            value = _word(rng)
            model[key] = value
            ops.append(("put", key, value))
        else:
            key = _word(rng)
            if key in model:
                continue
            value = _word(rng)
            model[key] = value
            ops.append(("insert", key, value))
    return ops


def run_recorded(engine, params, ops, checkpoint_every=16):
    """Run ``ops`` on a RecordingStableStore; return (store, timeline).

    ``timeline[i] = (start, end, model_after)`` where start/end are the
    physical-write watermarks bracketing logical op ``i``.
    """
    store = RecordingStableStore()
    f = DurableFile.open(store, engine=engine, checkpoint_every=checkpoint_every, **params)
    model = {}
    timeline = []
    for kind, key, value in ops:
        start = store.stats.write_ops
        if kind == "insert":
            f.insert(key, value)
            model[key] = value
        elif kind == "put":
            f.put(key, value)
            model[key] = value
        else:
            f.delete(key)
            del model[key]
        timeline.append((start, store.stats.write_ops, dict(model)))
    return store, timeline


def allowed_states(timeline, index):
    """Recovered-state candidates for a crash at physical write ``index``.

    The model of every acknowledged op, plus — when an op was in flight —
    the model including it (its record may have survived in a torn block).
    """
    acked = {}
    inflight = None
    for start, end, after in timeline:
        if end <= index:
            acked = after
        elif start <= index:
            inflight = after
            break
        else:
            break
    states = [acked]
    if inflight is not None:
        states.append(inflight)
    return states


def assert_reconstruction_agrees(th_file):
    """Differential oracle: bucket headers alone reproduce the mapping."""
    model = reconstruct_model(th_file.store, th_file.alphabet)
    for key in th_file.keys():
        gap = gap_index(model.boundaries, key, th_file.alphabet)
        assert model.children[gap] == th_file.trie.search(key).bucket, key


class ListSink:
    def __init__(self):
        self.events = []

    def on_event(self, event):
        self.events.append(event)


# ----------------------------------------------------------------------
# The acceptance sweep: every crash point of a 500-op mixed workload
# ----------------------------------------------------------------------
SWEEP_SEEDS = {"th": 101, "thcl": 202, "mlth": 303}


@pytest.mark.parametrize("config", sorted(SWEEP_CONFIGS))
def test_crash_point_sweep_mixed_workload(config):
    engine, params = SWEEP_CONFIGS[config]
    ops = mixed_ops(500, seed=SWEEP_SEEDS[config])
    store, timeline = run_recorded(engine, params, ops, checkpoint_every=32)
    assert store.crash_points, "the run captured no crash points"
    checked = 0
    for point in store.crash_points:
        survivor = StableStore.from_snapshot(point.image)
        recovered = DurableFile.open(survivor, engine=engine, **params)
        got = dict(recovered.items())
        states = allowed_states(timeline, point.index)
        assert got in states, (
            f"{config}: crash {point!r} recovered {len(got)} keys, "
            f"expected one of {[len(s) for s in states]}"
        )
        recovered.check()
        checked += 1
    # The sweep must cover the interesting boundary kinds. (A crash *at*
    # an fsync leaves the identical durable image as a clean crash at the
    # preceding append, so dedup folds fsync points into those.)
    kinds = {p.kind for p in store.crash_points}
    assert kinds >= {"append", "rename"}
    assert checked == len(store.crash_points)


def test_sweep_covers_torn_and_clean_variants():
    engine, params = SWEEP_CONFIGS["thcl"]
    ops = mixed_ops(60, seed=5)
    store, _ = run_recorded(engine, params, ops, checkpoint_every=8)
    variants = {p.variant for p in store.crash_points}
    assert variants == {"clean", "torn-half", "torn-full"}


def test_recovered_file_accepts_new_operations():
    engine, params = SWEEP_CONFIGS["thcl"]
    ops = mixed_ops(120, seed=11)
    store, timeline = run_recorded(engine, params, ops)
    # Sample a handful of points spread over the run.
    points = store.crash_points[:: max(1, len(store.crash_points) // 5)]
    for point in points:
        survivor = StableStore.from_snapshot(point.image)
        f = DurableFile.open(survivor, engine=engine, **params)
        before = len(f)
        f.insert("zzzcrashprobe", "x")
        assert f.get("zzzcrashprobe") == "x"
        assert len(f) == before + 1
        f.check()


# ----------------------------------------------------------------------
# Process-model crashes: CrashingStore
# ----------------------------------------------------------------------
def test_crashing_store_kills_and_poisons_session():
    store = CrashingStore(crash_at=40)
    f = DurableFile.open(store, engine="th", capacity=4)
    acked = {}
    crashed = False
    for kind, key, value in mixed_ops(200, seed=3):
        try:
            if kind == "insert":
                f.insert(key, value)
                acked[key] = value
            elif kind == "put":
                f.put(key, value)
                acked[key] = value
            else:
                f.delete(key)
                del acked[key]
        except CrashError:
            crashed = True
            break
    assert crashed, "the schedule never crashed"
    # The dead session refuses everything...
    with pytest.raises(StorageError):
        f.insert("after", "x")
    with pytest.raises(StorageError):
        f.get("after")
    # ...but reopening the surviving store recovers every acked op.
    g = DurableFile.open(store, engine="th", capacity=4)
    assert dict(g.items()) == acked
    g.check()


class CrashOnNextFsync(CrashingStore):
    """Crashes on the first fsync after :attr:`armed` is set."""

    def __init__(self):
        super().__init__()
        self.armed = False

    def _physical(self, kind, name, payload=b""):
        if self.armed and kind == "fsync" and self.crashes == 0:
            self.crash_at = self.stats.write_ops
        super()._physical(kind, name, payload)


class CrashOnAppendContaining(CrashingStore):
    """Crashes on the first append whose payload contains ``needle``."""

    def __init__(self, needle: bytes, torn_bytes: int):
        super().__init__(torn_bytes=torn_bytes)
        self.needle = needle

    def _physical(self, kind, name, payload=b""):
        if kind == "append" and self.crashes == 0 and self.needle in payload:
            self.crash_at = self.stats.write_ops
        super()._physical(kind, name, payload)


def test_crash_on_commit_fsync_loses_the_unacked_op():
    """Crash exactly at an op's commit fsync: the op never acked, never kept."""
    store = CrashOnNextFsync()
    f = DurableFile.open(store, engine="th", capacity=4, checkpoint_every=1000)
    acked = {}
    for key in ["apple", "beta", "cedar", "delta", "elm"]:
        f.insert(key, key[:1])
        acked[key] = key[:1]
    store.armed = True
    with pytest.raises(CrashError):
        f.insert("unacked", "u")
    g = DurableFile.open(store, engine="th", capacity=4)
    assert dict(g.items()) == acked  # clean cache loss: the op is gone
    g.check()


@pytest.mark.parametrize("torn_bytes", [3, 10_000])
def test_torn_op_record_append(torn_bytes):
    """Crash mid-append of the op record itself.

    A small tear leaves a truncated record (discarded: the op was never
    acked); a tear past the record's end persists the whole record
    without its fsync, so the unacked op may legitimately reappear — but
    nothing else ever does.
    """
    store = CrashOnAppendContaining(b'"unacked"', torn_bytes=torn_bytes)
    f = DurableFile.open(store, engine="th", capacity=4, checkpoint_every=1000)
    acked = {}
    for key in ["apple", "beta", "cedar", "delta", "elm"]:
        f.insert(key, key[:1])
        acked[key] = key[:1]
    with pytest.raises(CrashError):
        f.insert("unacked", "u")
    g = DurableFile.open(store, engine="th", capacity=4)
    got = dict(g.items())
    if torn_bytes == 3:
        assert got == acked
    else:
        assert got == {**acked, "unacked": "u"}
    g.check()


# ----------------------------------------------------------------------
# Torn and corrupt log tails
# ----------------------------------------------------------------------
def test_torn_wal_tail_is_discarded():
    store = StableStore()
    f = DurableFile.open(store, engine="th", capacity=4, checkpoint_every=1000)
    for key in ["alpha", "bravo", "charlie", "dog"]:
        f.insert(key)
    wal_name = f.manifest["wal"]
    # A torn record: half of a valid frame beyond the durable tail.
    frame = encode_record(999, REC_INSERT, {"k": "ghost", "v": None})
    store.append(wal_name, frame[: len(frame) // 2])
    g = DurableFile.open(store, engine="th")
    assert sorted(g.keys()) == ["alpha", "bravo", "charlie", "dog"]
    assert "ghost" not in g
    assert g.last_recovery.torn_tail


def test_trailing_garbage_after_valid_records():
    store = StableStore()
    f = DurableFile.open(store, engine="th", capacity=4, checkpoint_every=1000)
    f.insert("alpha")
    f.insert("bravo")
    store.append(f.manifest["wal"], b"\xff\x00garbage-not-a-record")
    g = DurableFile.open(store, engine="th")
    assert sorted(g.keys()) == ["alpha", "bravo"]
    assert g.last_recovery.torn_tail


def test_wal_codec_roundtrip_and_tear_points():
    records = [
        encode_record(1, REC_INSERT, {"k": "a", "v": "1"}),
        encode_record(2, REC_INSERT, {"k": "b", "v": None}),
        encode_record(3, REC_INSERT, {"k": "c", "v": "3"}),
    ]
    blob = b"".join(records)
    decoded, clean = read_records(blob)
    assert clean and [r.lsn for r in decoded] == [1, 2, 3]
    # Every proper prefix decodes to a clean-stopping prefix of records.
    for cut in range(len(blob)):
        decoded, clean = read_records(blob[:cut])
        whole = [r for r in records if blob.index(r) + len(r) <= cut]
        assert len(decoded) == len(whole)
        if cut != len(blob):
            boundary = cut in {sum(len(r) for r in records[:i]) for i in range(4)}
            assert clean == boundary
    # A flipped byte inside a record's payload breaks its CRC.
    broken = bytearray(blob)
    broken[len(records[0]) + 20] ^= 0xFF
    decoded, clean = read_records(bytes(broken))
    assert [r.lsn for r in decoded] == [1] and not clean


# ----------------------------------------------------------------------
# Checkpoint-corruption fallbacks
# ----------------------------------------------------------------------
def _newest_checkpoint(store):
    import json

    manifest = json.loads(store.read("MANIFEST").decode("utf-8"))
    return manifest["chain"][-1]


def _corrupt_index_section(image: bytes) -> bytes:
    """Flip a byte inside the index (trie/pages) section of a checkpoint."""
    magic = 6
    hlen = struct.unpack_from(">I", image, magic)[0]
    index_at = magic + 8 + hlen
    ilen = struct.unpack_from(">I", image, index_at)[0]
    assert ilen > 0
    pos = index_at + 8 + ilen // 2
    return image[:pos] + bytes([image[pos] ^ 0xFF]) + image[pos + 1 :]


def test_corrupt_trie_section_falls_back_to_reconstruction():
    store = StableStore()
    f = DurableFile.open(
        store, engine="th", capacity=4, policy=SplitPolicy.thcl(), checkpoint_every=16
    )
    rng = random.Random(21)
    model = {}
    for _ in range(150):
        key = _word(rng)
        if key in model:
            continue
        f.insert(key, key[:2])
        model[key] = key[:2]
    f.checkpoint(full=True)  # quiescent point: nothing left to replay
    name = _newest_checkpoint(store)
    store.write_atomic(name, _corrupt_index_section(store.read(name)))

    sink = ListSink()
    with trace([sink]):
        g = DurableFile.open(store, engine="th")
    assert g.last_recovery.used_fallback == "reconstruct"
    assert dict(g.items()) == model
    g.check()
    # The rebuilt trie and the bucket headers agree key by key.
    assert_reconstruction_agrees(g.file)
    # Recovery is visible to observability: a closed `recovery` span.
    spans = [e for e in sink.events if e.name == "span_end"]
    assert any(e.fields.get("op") == "recovery" for e in spans)
    done = [e for e in sink.events if e.name == "recovery_done"]
    assert done and done[0].fields["fallback"] == "reconstruct"
    # The file keeps working after a fallback recovery (THCL splits
    # handle the reconstructed shared leaves natively).
    for _ in range(60):
        key = _word(rng)
        if key in model:
            continue
        g.insert(key, "x")
        model[key] = "x"
    assert dict(g.items()) == model
    g.check()


def test_corrupt_mlth_index_rebuilds_by_reinsert():
    store = StableStore()
    engine, params = SWEEP_CONFIGS["mlth"]
    f = DurableFile.open(store, engine=engine, checkpoint_every=16, **params)
    rng = random.Random(8)
    model = {}
    for _ in range(200):
        key = _word(rng)
        if key in model:
            continue
        f.insert(key, key[-1])
        model[key] = key[-1]
    f.checkpoint(full=True)
    name = _newest_checkpoint(store)
    store.write_atomic(name, _corrupt_index_section(store.read(name)))
    g = DurableFile.open(store, engine=engine)
    assert g.last_recovery.used_fallback == "reinsert"
    assert dict(g.items()) == model
    g.check()
    g.insert("aaaa", "v")
    assert g.get("aaaa") == "v"


def test_corrupt_btree_index_is_unrecoverable():
    store = StableStore()
    f = DurableFile.open(store, engine="btree", leaf_capacity=4)
    for key in ["ash", "birch", "cedar", "dogwood", "elm", "fir"]:
        f.insert(key, key[:1])
    f.checkpoint(full=True)
    name = _newest_checkpoint(store)
    store.write_atomic(name, _corrupt_index_section(store.read(name)))
    with pytest.raises(RecoveryError):
        DurableFile.open(store, engine="btree")


def test_corrupt_checkpoint_header_raises_recovery_error():
    store = StableStore()
    f = DurableFile.open(store, engine="th", capacity=4)
    f.insert("alpha")
    f.checkpoint()
    name = _newest_checkpoint(store)
    image = bytearray(store.read(name))
    image[10] ^= 0xFF  # inside the header section
    store.write_atomic(name, bytes(image))
    with pytest.raises(RecoveryError):
        DurableFile.open(store, engine="th")


def test_missing_manifest_means_fresh_file():
    store = StableStore()
    f = DurableFile.open(store, engine="th", capacity=4)
    f.insert("alpha")
    store.delete("MANIFEST")
    g = DurableFile.open(store, engine="th", capacity=4)
    assert len(g) == 0  # no manifest, no file: a fresh one is created


# ----------------------------------------------------------------------
# Differential oracle: recovery vs Section-6 reconstruction
# ----------------------------------------------------------------------
@pytest.mark.parametrize("config", ["th", "thcl"])
def test_reconstruction_oracle_after_sweep_recoveries(config):
    engine, params = SWEEP_CONFIGS[config]
    ops = mixed_ops(150, seed=17)
    store, timeline = run_recorded(engine, params, ops)
    points = store.crash_points[:: max(1, len(store.crash_points) // 12)]
    for point in points:
        survivor = StableStore.from_snapshot(point.image)
        g = DurableFile.open(survivor, engine=engine, **params)
        assert_reconstruction_agrees(g.file)


# ----------------------------------------------------------------------
# B+-tree baseline durability
# ----------------------------------------------------------------------
def test_btree_durable_recovery_replays_log():
    store = StableStore()
    f = DurableFile.open(store, engine="btree", leaf_capacity=4, checkpoint_every=8)
    rng = random.Random(4)
    model = {}
    for _ in range(120):
        key = _word(rng)
        if rng.random() < 0.2 and model:
            victim = rng.choice(sorted(model))
            f.delete(victim)
            del model[victim]
        elif key not in model:
            f.insert(key, key[:1])
            model[key] = key[:1]
    img = store.snapshot_durable()
    g = DurableFile.open(StableStore.from_snapshot(img), engine="btree")
    assert dict(g.items()) == model
    g.check()


def test_btree_crash_sweep_small():
    ops = mixed_ops(80, seed=23)
    store, timeline = run_recorded("btree", dict(leaf_capacity=4), ops, checkpoint_every=8)
    for point in store.crash_points:
        survivor = StableStore.from_snapshot(point.image)
        g = DurableFile.open(survivor, engine="btree", leaf_capacity=4)
        assert dict(g.items()) in allowed_states(timeline, point.index)
        g.check()


# ----------------------------------------------------------------------
# Observability of the ack path
# ----------------------------------------------------------------------
def test_wal_appends_and_fsyncs_are_traced():
    store = StableStore()
    sink = ListSink()
    with trace([sink]):
        f = DurableFile.open(store, engine="th", capacity=4)
        f.insert("alpha", "a")
        f.insert("bravo", "b")
    names = [e.name for e in sink.events]
    assert names.count("wal_fsync") >= 2  # one commit per acked op
    appends = [e for e in sink.events if e.name == "wal_append"]
    assert len(appends) >= 2
    assert all(e.fields["bytes"] > 0 for e in appends)
    checkpoints = [e for e in sink.events if e.name == "checkpoint"]
    assert checkpoints and checkpoints[0].fields["full"] is True


def test_checkpoint_event_reports_incremental_bucket_count():
    store = StableStore()
    f = DurableFile.open(store, engine="th", capacity=4, checkpoint_every=1000)
    for key in ["alpha", "bravo", "chip", "dome", "echo", "fig", "gulf"]:
        f.insert(key)
    sink = ListSink()
    with trace([sink]):
        f.insert("hotel")
        f.checkpoint()  # incremental: only buckets dirtied since genesis
    events = [e for e in sink.events if e.name == "checkpoint"]
    assert events and events[0].fields["full"] is False
    live = len(f.file.store.live_addresses())
    assert 0 < events[0].fields["buckets"] <= live


# ----------------------------------------------------------------------
# Session semantics
# ----------------------------------------------------------------------
def test_values_must_be_strings():
    f = DurableFile.open(StableStore(), engine="th", capacity=4)
    with pytest.raises(StorageError):
        f.insert("key", 42)


def test_validation_errors_do_not_poison_or_log():
    store = StableStore()
    f = DurableFile.open(store, engine="th", capacity=4, checkpoint_every=1000)
    f.insert("alpha", "a")
    appended = store.stats.appends
    from repro.core.errors import DuplicateKeyError, KeyNotFoundError

    with pytest.raises(DuplicateKeyError):
        f.insert("alpha", "again")
    with pytest.raises(KeyNotFoundError):
        f.delete("missing")
    assert store.stats.appends == appended  # rejected ops leave no trace
    f.insert("bravo", "b")  # the session is still healthy
    assert sorted(f.keys()) == ["alpha", "bravo"]


def test_reopen_must_not_pass_conflicting_engine():
    store = StableStore()
    DurableFile.open(store, engine="th", capacity=4).insert("alpha")
    g = DurableFile.open(store, engine="btree")  # stored engine wins
    assert g.engine.kind == "th"
    assert "alpha" in g


# ----------------------------------------------------------------------
# Request-id durability (the distributed exactly-once contract)
# ----------------------------------------------------------------------
def test_rids_survive_wal_replay():
    stable = StableStore()
    f = DurableFile.open(stable, engine="th", capacity=4, checkpoint_every=1000)
    f.insert("apple", "A", rid=(1, 1))
    f.put("bird", "B", rid=(1, 2))
    assert f.delete("apple", rid=(1, 3)) == "A"
    stable.lose_volatile()  # crash: everything above lives only in the WAL

    recovered = DurableFile.open(stable)
    assert recovered.last_recovery.replayed == 3
    assert recovered.dedup.lookup((1, 1)) == (True, None)
    assert recovered.dedup.lookup((1, 2)) == (True, None)
    # Replay re-executes the delete, so the recorded result is rebuilt.
    assert recovered.dedup.lookup((1, 3)) == (True, "A")
    assert recovered.dedup.lookup((1, 4)) == (False, None)


def test_rids_survive_via_checkpoint_header():
    stable = StableStore()
    f = DurableFile.open(stable, engine="th", capacity=4, checkpoint_every=1000)
    f.insert("apple", "A", rid=(7, 1))
    f.checkpoint()  # embeds the window; truncates the WAL
    stable.lose_volatile()

    recovered = DurableFile.open(stable)
    assert recovered.last_recovery.replayed == 0  # nothing left to replay
    assert recovered.dedup.lookup((7, 1)) == (True, None)
    assert recovered.get("apple") == "A"


def test_rids_without_stamp_are_not_tracked():
    stable = StableStore()
    f = DurableFile.open(stable, engine="th", capacity=4)
    f.insert("apple", "A")  # rid-less (single-node usage)
    assert len(f.dedup) == 0
    stable.lose_volatile()
    recovered = DurableFile.open(stable)
    assert len(recovered.dedup) == 0
    assert recovered.get("apple") == "A"


def test_rid_payloads_do_not_disturb_old_records():
    # Mixed stamped and unstamped records replay side by side.
    stable = StableStore()
    f = DurableFile.open(stable, engine="th", capacity=4, checkpoint_every=1000)
    f.insert("plain", "P")
    f.insert("stamped", "S", rid=(2, 5))
    stable.lose_volatile()
    recovered = DurableFile.open(stable)
    assert recovered.get("plain") == "P"
    assert recovered.get("stamped") == "S"
    assert (2, 5) in recovered.dedup
    recovered.check()
