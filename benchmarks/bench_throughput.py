"""Micro-benchmarks: operation throughput of the three access methods.

Not a paper artifact per se, but the operational backing of Section 5's
"fast search within a page": A1 compares one digit per visited node, so
in-core search stays cheap even for large tries.
"""

import pytest

from repro import BPlusTree, MLTHFile, SplitPolicy, THFile
from repro.workloads import KeyGenerator

KEYS = KeyGenerator(99).uniform(5000)
PROBES = KEYS[::7]


@pytest.fixture(scope="module")
def th_file():
    f = THFile(bucket_capacity=20)
    for k in KEYS:
        f.insert(k)
    return f


@pytest.fixture(scope="module")
def mlth_file():
    f = MLTHFile(bucket_capacity=20, page_capacity=64)
    for k in KEYS:
        f.insert(k)
    return f


@pytest.fixture(scope="module")
def btree():
    t = BPlusTree(leaf_capacity=20)
    for k in KEYS:
        t.insert(k)
    return t


def test_search_throughput_th(benchmark, th_file):
    benchmark(lambda: [th_file.get(k) for k in PROBES])


def test_search_throughput_mlth(benchmark, mlth_file):
    benchmark(lambda: [mlth_file.get(k) for k in PROBES])


def test_search_throughput_btree(benchmark, btree):
    benchmark(lambda: [btree.get(k) for k in PROBES])


def test_insert_throughput_th(benchmark):
    def build():
        f = THFile(bucket_capacity=20)
        for k in KEYS[:2000]:
            f.insert(k)
        return f

    benchmark(build)


def test_insert_throughput_btree(benchmark):
    def build():
        t = BPlusTree(leaf_capacity=20)
        for k in KEYS[:2000]:
            t.insert(k)
        return t

    benchmark(build)


def test_range_scan_throughput(benchmark, th_file):
    s = sorted(KEYS)
    lo, hi = s[1000], s[3000]
    out = benchmark(lambda: sum(1 for _ in th_file.range_items(lo, hi)))
    assert out == 2001


def test_bulk_load_th(benchmark):
    """Bottom-up compact build: the fast path for sorted loads."""
    from repro import bulk_load_th

    s = sorted(KEYS)
    f = benchmark(lambda: bulk_load_th(((k, None) for k in s), bucket_capacity=20))
    assert f.load_factor() > 0.95


def test_incremental_compact_build(benchmark):
    """The same compact file built through per-insert splitting."""
    s = sorted(KEYS)

    def build():
        f = THFile(bucket_capacity=20, policy=SplitPolicy.thcl_ascending(0))
        for k in s:
            f.insert(k)
        return f

    f = benchmark(build)
    assert f.load_factor() > 0.95


def test_search_unbalanced_trie(benchmark):
    """In-core search over the skewed trie an ordered load builds."""
    from repro import SplitPolicy

    s = sorted(KEYS)
    f = THFile(bucket_capacity=20, policy=SplitPolicy.thcl_guaranteed_half())
    for k in s:
        f.insert(k)
    benchmark(lambda: [f.trie.search(k) for k in PROBES])


def test_search_balanced_trie(benchmark):
    """The same trie after the Section 2.6 canonical rebalancing."""
    from repro import SplitPolicy
    from repro.core.balance import balance

    s = sorted(KEYS)
    f = THFile(bucket_capacity=20, policy=SplitPolicy.thcl_guaranteed_half())
    for k in s:
        f.insert(k)
    trie = balance(f.trie)
    benchmark(lambda: [trie.search(k) for k in PROBES])
