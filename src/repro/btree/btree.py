"""A B+-tree with the knobs the paper's comparison needs.

The split fraction reproduces /ROS81/'s linear load control: the bucket
load of an ordered (ascending) load is simply the fraction of records the
split leaves behind, up to the 100%-compact B-tree at fraction 1.0.
Optional redistribution before splitting reproduces the ~87% random load
of /KNU73/; deletions borrow or merge, guaranteeing the 50% floor the
paper credits B-trees with (Section 3.3).
"""

from __future__ import annotations

import bisect
from collections.abc import Iterator
from typing import Optional

from ..check.hook import maybe_audit
from ..core.errors import CapacityError, DuplicateKeyError, KeyNotFoundError
from ..obs.tracer import TRACER
from ..storage.buffer import BufferPool
from ..storage.disk import SimulatedDisk
from ..storage.layout import Layout
from .node import BranchNode, LeafNode

__all__ = ["BPlusTree"]

#: A descent step: (node id, node, child index taken).
_Step = tuple[int, object, int]


class BPlusTree:
    """An order-preserving B+-tree over the simulated disk.

    Parameters
    ----------
    leaf_capacity:
        Records per leaf (the analogue of the bucket capacity ``b``).
    branch_capacity:
        Separators per branch node; defaults to ``leaf_capacity``.
    split_fraction:
        Fraction of records a leaf split leaves in the left node
        (0.5 = classic; 1.0 = compact loading for ascending keys).
    redistribute:
        Try to push records into a sibling before splitting.
    pin_root:
        Keep the root node in core (mirrors the trie held in core).
    """

    def __init__(
        self,
        leaf_capacity: int = 4,
        branch_capacity: Optional[int] = None,
        split_fraction: float = 0.5,
        redistribute: bool = False,
        pin_root: bool = True,
        layout: Optional[Layout] = None,
        disk: Optional[SimulatedDisk] = None,
    ):
        if leaf_capacity < 2:
            raise CapacityError("leaf capacity must be at least 2")
        if not 0.0 < split_fraction <= 1.0:
            raise CapacityError("split fraction must be in (0, 1]")
        self.leaf_capacity = leaf_capacity
        self.branch_capacity = branch_capacity or leaf_capacity
        if self.branch_capacity < 2:
            raise CapacityError("branch capacity must be at least 2")
        self.split_fraction = split_fraction
        self.redistribute = redistribute
        self.layout = layout or Layout()
        self.disk = disk if disk is not None else SimulatedDisk(name="btree")
        self.pool = BufferPool(self.disk, capacity=0)
        self.root_id = self.pool.allocate(LeafNode())
        if pin_root:
            self.pool.pin(self.root_id)
        self.pin_root = pin_root
        self._size = 0
        self._height = 1
        #: Optional :class:`~repro.storage.wal.WALWriter` recording node
        #: splits and merges (attached by a durable session, so recovery
        #: comparisons against trie hashing use the same log machinery).
        self.journal = None
        self.splits = 0
        self.redistributions = 0
        self.merges = 0
        self.borrows = 0

    # ------------------------------------------------------------------
    # Descent
    # ------------------------------------------------------------------
    def _descend(self, key: str) -> list[_Step]:
        steps: list[_Step] = []
        node_id = self.root_id
        while True:
            node = self.pool.read(node_id)
            if isinstance(node, LeafNode):
                steps.append((node_id, node, -1))
                return steps
            at = node.child_for(key)
            steps.append((node_id, node, at))
            node_id = node.children[at]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, key: str) -> object:
        """Value stored under ``key``; raises :class:`KeyNotFoundError`."""
        if TRACER.enabled:
            with TRACER.span("search", key=key):
                return self._get(key)
        return self._get(key)

    def _get(self, key: str) -> object:
        leaf = self._descend(key)[-1][1]
        i = leaf.find(key)
        if i < 0:
            raise KeyNotFoundError(key)
        return leaf.values[i]

    def contains(self, key: str) -> bool:
        """True when the tree stores ``key``."""
        if TRACER.enabled:
            with TRACER.span("search", key=key):
                return self._descend(key)[-1][1].find(key) >= 0
        return self._descend(key)[-1][1].find(key) >= 0

    def __contains__(self, key: str) -> bool:
        return self.contains(key)

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def _leaf_split_position(self, total: int) -> int:
        """Records kept left by a split of ``total`` records."""
        keep = round(self.split_fraction * self.leaf_capacity)
        return max(1, min(keep, total - 1))

    def insert(self, key: str, value: object = None) -> None:
        """Insert a new record; duplicates are rejected."""
        if TRACER.enabled:
            with TRACER.span("insert", key=key):
                self._insert(key, value)
        else:
            self._insert(key, value)
        maybe_audit(self, f"BPlusTree.insert({key!r})")

    def _insert(self, key: str, value: object = None) -> None:
        steps = self._descend(key)
        leaf_id, leaf, _ = steps[-1]
        if leaf.find(key) >= 0:
            raise DuplicateKeyError(key)
        if len(leaf) < self.leaf_capacity:
            leaf.insert(key, value)
            self.pool.write(leaf_id, leaf)
        elif self.redistribute and self._try_redistribute(steps, key, value):
            self.redistributions += 1
            if TRACER.enabled:
                TRACER.emit("redistribute", bucket=leaf_id)
        else:
            self._split_leaf(steps, key, value)
            self.splits += 1
        self._size += 1

    def put(self, key: str, value: object = None) -> None:
        """Insert or overwrite."""
        if TRACER.enabled:
            with TRACER.span("insert", key=key):
                self._put(key, value)
        else:
            self._put(key, value)
        maybe_audit(self, f"BPlusTree.put({key!r})")

    def _put(self, key: str, value: object = None) -> None:
        steps = self._descend(key)
        leaf_id, leaf, _ = steps[-1]
        i = leaf.find(key)
        if i >= 0:
            leaf.values[i] = value
            self.pool.write(leaf_id, leaf)
            return
        self._insert(key, value)

    def _split_leaf(self, steps: list[_Step], key: str, value: object) -> None:
        leaf_id, leaf, _ = steps[-1]
        leaf.insert(key, value)
        keep = self._leaf_split_position(len(leaf))
        right = leaf.split_at(keep)
        right_id = self.pool.allocate(right)
        right.next_leaf = leaf.next_leaf
        right.prev_leaf = leaf_id
        if leaf.next_leaf is not None:
            after = self.pool.read(leaf.next_leaf)
            after.prev_leaf = right_id
            self.pool.write(leaf.next_leaf, after)
        leaf.next_leaf = right_id
        separator = leaf.keys[-1]
        self.pool.write(leaf_id, leaf)
        self.pool.write(right_id, right)
        if self.journal is not None:
            self.journal.log_node_split("leaf", leaf_id, right_id)
        if TRACER.enabled:
            TRACER.emit(
                "split",
                kind="leaf",
                bucket=leaf_id,
                new_bucket=right_id,
                moved=len(right.keys),
                stayed=len(leaf.keys),
            )
        self._insert_up(steps, len(steps) - 2, separator, leaf_id, right_id)

    def _insert_up(
        self,
        steps: list[_Step],
        index: int,
        separator: str,
        left_id: int,
        right_id: int,
    ) -> None:
        """Insert a separator at branch level ``index``, splitting upward."""
        if index < 0:
            root = BranchNode()
            root.keys = [separator]
            root.children = [left_id, right_id]
            new_root_id = self.pool.allocate(root)
            if self.pin_root:
                self.pool.unpin(self.root_id)
                self.pool.pin(new_root_id)
            self.root_id = new_root_id
            self.pool.write(new_root_id, root)
            self._height += 1
            return
        node_id, node, at = steps[index]
        node.insert_separator(at, separator, right_id)
        if len(node) <= self.branch_capacity:
            self.pool.write(node_id, node)
            return
        middle = len(node) // 2
        promoted, right = node.split_at(middle)
        new_right_id = self.pool.allocate(right)
        self.pool.write(node_id, node)
        self.pool.write(new_right_id, right)
        if self.journal is not None:
            self.journal.log_node_split("branch", node_id, new_right_id)
        if TRACER.enabled:
            TRACER.emit("page_split", page=node_id, new_page=new_right_id)
        self._insert_up(steps, index - 1, promoted, node_id, new_right_id)

    def _try_redistribute(self, steps: list[_Step], key: str, value: object) -> bool:
        """Push overflow into a sibling leaf instead of splitting."""
        if len(steps) < 2:
            return False
        leaf_id, leaf, _ = steps[-1]
        parent_id, parent, at = steps[-2]
        combined = leaf.items()
        bisect.insort(combined, (key, value))
        # Right sibling first, then left (both under the same parent).
        if at + 1 < len(parent.children):
            sib_id = parent.children[at + 1]
            sibling = self.pool.read(sib_id)
            room = self.leaf_capacity - len(sibling)
            if room >= 1:
                move = max(1, min(room, (len(combined) - len(sibling)) // 2))
                keep = len(combined) - move
                moved = combined[keep:]
                leaf.keys = [k for k, _ in combined[:keep]]
                leaf.values = [v for _, v in combined[:keep]]
                sibling.keys[0:0] = [k for k, _ in moved]
                sibling.values[0:0] = [v for _, v in moved]
                parent.keys[at] = leaf.keys[-1]
                self.pool.write(leaf_id, leaf)
                self.pool.write(sib_id, sibling)
                self.pool.write(parent_id, parent)
                return True
        if at - 1 >= 0:
            sib_id = parent.children[at - 1]
            sibling = self.pool.read(sib_id)
            room = self.leaf_capacity - len(sibling)
            if room >= 1:
                move = max(1, min(room, (len(combined) - len(sibling)) // 2))
                moved = combined[:move]
                leaf.keys = [k for k, _ in combined[move:]]
                leaf.values = [v for _, v in combined[move:]]
                sibling.keys.extend(k for k, _ in moved)
                sibling.values.extend(v for _, v in moved)
                parent.keys[at - 1] = sibling.keys[-1]
                self.pool.write(leaf_id, leaf)
                self.pool.write(sib_id, sibling)
                self.pool.write(parent_id, parent)
                return True
        return False

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------
    def delete(self, key: str) -> object:
        """Delete ``key``, borrowing/merging to keep every leaf half full."""
        if TRACER.enabled:
            with TRACER.span("delete", key=key):
                value = self._delete(key)
        else:
            value = self._delete(key)
        maybe_audit(self, f"BPlusTree.delete({key!r})")
        return value

    def _delete(self, key: str) -> object:
        steps = self._descend(key)
        leaf_id, leaf, _ = steps[-1]
        if leaf.find(key) < 0:
            raise KeyNotFoundError(key)
        value = leaf.remove(key)
        self.pool.write(leaf_id, leaf)
        self._size -= 1
        if len(leaf) < self.leaf_capacity // 2 and len(steps) > 1:
            self._fix_leaf_underflow(steps)
        return value

    def _fix_leaf_underflow(self, steps: list[_Step]) -> None:
        leaf_id, leaf, _ = steps[-1]
        parent_id, parent, at = steps[-2]
        floor = self.leaf_capacity // 2

        def sibling(side: int):
            j = at + side
            if 0 <= j < len(parent.children):
                sid = parent.children[j]
                return sid, self.pool.read(sid)
            return None, None

        left_id, left = sibling(-1)
        right_id, right = sibling(+1)
        # Borrow from the richer sibling when possible.
        if left is not None and len(left) > floor:
            leaf.keys.insert(0, left.keys.pop())
            leaf.values.insert(0, left.values.pop())
            parent.keys[at - 1] = left.keys[-1]
            self.pool.write(left_id, left)
            self.pool.write(leaf_id, leaf)
            self.pool.write(parent_id, parent)
            self.borrows += 1
            if TRACER.enabled:
                TRACER.emit("rebalance", kind="borrow")
            return
        if right is not None and len(right) > floor:
            leaf.keys.append(right.keys.pop(0))
            leaf.values.append(right.values.pop(0))
            parent.keys[at] = leaf.keys[-1]
            self.pool.write(right_id, right)
            self.pool.write(leaf_id, leaf)
            self.pool.write(parent_id, parent)
            self.borrows += 1
            if TRACER.enabled:
                TRACER.emit("rebalance", kind="borrow")
            return
        # Merge with a sibling and drop one separator from the parent.
        if left is not None:
            left.keys.extend(leaf.keys)
            left.values.extend(leaf.values)
            left.next_leaf = leaf.next_leaf
            if leaf.next_leaf is not None:
                after = self.pool.read(leaf.next_leaf)
                after.prev_leaf = left_id
                self.pool.write(leaf.next_leaf, after)
            del parent.keys[at - 1]
            del parent.children[at]
            self.pool.write(left_id, left)
            self.pool.free(leaf_id)
        elif right is not None:
            leaf.keys.extend(right.keys)
            leaf.values.extend(right.values)
            leaf.next_leaf = right.next_leaf
            if right.next_leaf is not None:
                after = self.pool.read(right.next_leaf)
                after.prev_leaf = leaf_id
                self.pool.write(right.next_leaf, after)
            del parent.keys[at]
            del parent.children[at + 1]
            self.pool.write(leaf_id, leaf)
            self.pool.free(right_id)
        else:  # single child under the root: cannot happen in a B+-tree
            return
        self.merges += 1
        if self.journal is not None:
            self.journal.log_merge("leaf", left_id if left is not None else leaf_id,
                                   leaf_id if left is not None else right_id)
        if TRACER.enabled:
            TRACER.emit("merge", kind="leaf")
        self.pool.write(parent_id, parent)
        self._fix_branch_underflow(steps, len(steps) - 2)

    def _fix_branch_underflow(self, steps: list[_Step], index: int) -> None:
        node_id, node, _ = steps[index]
        if index == 0:
            if len(node.keys) == 0:
                # The root branch emptied: its single child becomes root.
                child_id = node.children[0]
                if self.pin_root:
                    self.pool.unpin(self.root_id)
                    self.pool.pin(child_id)
                self.pool.free(node_id)
                self.root_id = child_id
                self._height -= 1
            return
        floor = self.branch_capacity // 2
        if len(node.keys) >= floor:
            return
        parent_id, parent, at = steps[index - 1]

        def sibling(side: int):
            j = at + side
            if 0 <= j < len(parent.children):
                sid = parent.children[j]
                return sid, self.pool.read(sid)
            return None, None

        left_id, left = sibling(-1)
        right_id, right = sibling(+1)
        if left is not None and len(left.keys) > floor:
            node.keys.insert(0, parent.keys[at - 1])
            node.children.insert(0, left.children.pop())
            parent.keys[at - 1] = left.keys.pop()
            self.pool.write(left_id, left)
            self.pool.write(node_id, node)
            self.pool.write(parent_id, parent)
            self.borrows += 1
            if TRACER.enabled:
                TRACER.emit("rebalance", kind="borrow")
            return
        if right is not None and len(right.keys) > floor:
            node.keys.append(parent.keys[at])
            node.children.append(right.children.pop(0))
            parent.keys[at] = right.keys.pop(0)
            self.pool.write(right_id, right)
            self.pool.write(node_id, node)
            self.pool.write(parent_id, parent)
            self.borrows += 1
            if TRACER.enabled:
                TRACER.emit("rebalance", kind="borrow")
            return
        if left is not None:
            left.keys.append(parent.keys[at - 1])
            left.keys.extend(node.keys)
            left.children.extend(node.children)
            del parent.keys[at - 1]
            del parent.children[at]
            self.pool.write(left_id, left)
            self.pool.free(node_id)
        elif right is not None:
            node.keys.append(parent.keys[at])
            node.keys.extend(right.keys)
            node.children.extend(right.children)
            del parent.keys[at]
            del parent.children[at + 1]
            self.pool.write(node_id, node)
            self.pool.free(right_id)
        else:
            return
        self.merges += 1
        if TRACER.enabled:
            TRACER.emit("merge", kind="branch")
        self.pool.write(parent_id, parent)
        self._fix_branch_underflow(steps, index - 1)

    # ------------------------------------------------------------------
    # Ordered iteration
    # ------------------------------------------------------------------
    def _leftmost_leaf_id(self) -> int:
        node_id = self.root_id
        while True:
            node = self.pool.read(node_id)
            if isinstance(node, LeafNode):
                return node_id
            node_id = node.children[0]

    def items(self) -> Iterator[tuple[str, object]]:
        """All records in key order via the leaf chain."""
        leaf_id: Optional[int] = self._leftmost_leaf_id()
        while leaf_id is not None:
            leaf = self.pool.read(leaf_id)
            yield from leaf.items()
            leaf_id = leaf.next_leaf

    def keys(self) -> Iterator[str]:
        """All keys in order."""
        for key, _ in self.items():
            yield key

    def range_items(
        self, low: Optional[str] = None, high: Optional[str] = None
    ) -> Iterator[tuple[str, object]]:
        """Records with ``low <= key <= high``."""
        it = self._range_items(low, high)
        if TRACER.enabled:
            return TRACER.wrap_iter("range", it)
        return it

    def _range_items(
        self, low: Optional[str] = None, high: Optional[str] = None
    ) -> Iterator[tuple[str, object]]:
        if low is None:
            leaf_id: Optional[int] = self._leftmost_leaf_id()
        else:
            leaf_id = self._descend(low)[-1][0]
        while leaf_id is not None:
            leaf = self.pool.read(leaf_id)
            begin = 0 if low is None else bisect.bisect_left(leaf.keys, low)
            for i in range(begin, len(leaf.keys)):
                if high is not None and leaf.keys[i] > high:
                    return
                yield leaf.keys[i], leaf.values[i]
            leaf_id = leaf.next_leaf

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    @property
    def height(self) -> int:
        """Number of node levels (1 = a single leaf)."""
        return self._height

    def _walk_nodes(self):
        stack = [self.root_id]
        while stack:
            node_id = stack.pop()
            node = self.disk.peek(node_id)
            yield node_id, node
            if isinstance(node, BranchNode):
                stack.extend(node.children)

    def leaf_count(self) -> int:
        """Number of leaves (the analogue of ``N + 1``)."""
        return sum(1 for _, n in self._walk_nodes() if isinstance(n, LeafNode))

    def separator_count(self) -> int:
        """Total separators in branch nodes (index entries)."""
        return sum(
            len(n.keys) for _, n in self._walk_nodes() if isinstance(n, BranchNode)
        )

    def load_factor(self) -> float:
        """Leaf load: records over leaf slots."""
        leaves = self.leaf_count()
        return self._size / (self.leaf_capacity * leaves) if leaves else 0.0

    def index_bytes(self) -> int:
        """Branch-entry bytes per the layout (key + pointer each)."""
        return self.layout.btree_branch_bytes(self.separator_count())

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def check(self) -> None:
        """Verify ordering, separator correctness and record count."""
        collected = list(self.keys())
        if collected != sorted(collected):
            raise AssertionError("leaf chain out of order")
        if len(collected) != self._size:
            raise AssertionError("size mismatch")
        for key in collected:
            leaf = self._descend(key)[-1][1]
            if leaf.find(key) < 0:
                raise AssertionError(f"descent loses key {key!r}")
