"""Registry, severity model and paranoid switch for ``repro.check``.

The registry maps *dotted class paths* to audit functions, so
registering an audit never imports the structure it audits (no import
cycles, no import cost until an object of that type actually shows up).
Lookup walks the object's MRO and uses the most specific registered
entry — an :class:`~repro.core.overflow.OverflowTHFile` finds its own
audit before the plain ``THFile`` one.

Severity contract:

* ``CRITICAL`` — structural corruption; continuing risks silent data
  loss (a trie cell reachable twice, a record outside its region).
* ``ERROR`` — an invariant is broken but contained (an over-capacity
  bucket, a stale counter); results may be wrong, data is recoverable.
* ``WARNING`` — legal but suspicious state worth surfacing (a poisoned
  durable session, a skipped check because a server is down).

:class:`AuditReport.ok` is true when nothing at ``ERROR`` or above was
found; warnings never fail an audit on their own.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from collections.abc import Callable, Iterable
from typing import Optional

from ..core.errors import TrieHashingError

__all__ = [
    "AuditLevel",
    "AuditReport",
    "ParanoidAuditError",
    "Severity",
    "Violation",
    "audit",
    "find_audit",
    "maybe_audit",
    "paranoid_enabled",
    "register_audit",
    "registered_audits",
    "set_paranoid",
]


class Severity(IntEnum):
    """How bad one violation is (see the module docstring contract)."""

    WARNING = 1
    ERROR = 2
    CRITICAL = 3


class AuditLevel(IntEnum):
    """How hard an audit looks.

    ``BASIC`` must stay O(1)-ish (counters, shapes); ``FULL`` may sweep
    the whole structure once; ``PARANOID`` may redundantly re-derive
    state to cross-check it.
    """

    BASIC = 1
    FULL = 2
    PARANOID = 3


@dataclass(frozen=True)
class Violation:
    """One audit finding."""

    code: str
    severity: Severity
    message: str
    target: str = ""

    def as_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity.name,
            "message": self.message,
            "target": self.target,
        }

    def render(self) -> str:
        return f"[{self.severity.name}] {self.code} {self.target}: {self.message}"


@dataclass
class AuditReport:
    """The machine-readable outcome of one :func:`audit` call."""

    target: str
    level: AuditLevel
    violations: list[Violation] = field(default_factory=list)
    checks_run: int = 0

    @property
    def ok(self) -> bool:
        """True when nothing at ERROR severity or above was found."""
        return all(v.severity < Severity.ERROR for v in self.violations)

    @property
    def worst(self) -> Optional[Severity]:
        if not self.violations:
            return None
        return max(v.severity for v in self.violations)

    def as_dict(self) -> dict:
        return {
            "target": self.target,
            "level": self.level.name,
            "ok": self.ok,
            "checks_run": self.checks_run,
            "violations": [v.as_dict() for v in self.violations],
        }

    def render(self) -> str:
        head = (
            f"audit {self.target} level={self.level.name} "
            f"checks={self.checks_run}: "
        )
        if not self.violations:
            return head + "clean"
        return head + "\n" + "\n".join(v.render() for v in self.violations)


class ParanoidAuditError(TrieHashingError):
    """A paranoid-mode audit found violations at a mutation site.

    Registered in the wire codec's ``ERROR_CODES``: an instance decoded
    off the wire is rebuilt from its rendered message alone, so the
    constructor accepts a plain string in place of a report (``report``
    and ``context`` are then empty).
    """

    def __init__(self, report, context: str = ""):
        if isinstance(report, str):
            self.report = None
            self.context = context
            super().__init__(report)
            return
        self.report = report
        self.context = context
        where = f" after {context}" if context else ""
        super().__init__(f"paranoid audit failed{where}:\n{report.render()}")


#: An audit: ``(obj, level) -> iterable of Violation``. ``checks_run``
#: bookkeeping is handled by the framework via the generator protocol —
#: audits just yield findings (and may yield nothing).
AuditFn = Callable[[object, AuditLevel], Iterable[Violation]]

_REGISTRY: dict[str, AuditFn] = {}


def register_audit(class_path: str) -> Callable[[AuditFn], AuditFn]:
    """Register an audit for the class at dotted ``class_path``.

    The path is matched against ``f"{cls.__module__}.{cls.__qualname__}"``
    of every class in an audited object's MRO, most specific first.
    """

    def decorate(fn: AuditFn) -> AuditFn:
        if class_path in _REGISTRY:
            raise ValueError(f"duplicate audit for {class_path}")
        _REGISTRY[class_path] = fn
        return fn

    return decorate


def registered_audits() -> list[str]:
    """Dotted class paths with a registered audit, sorted."""
    return sorted(_REGISTRY)


def find_audit(cls: type) -> Optional[AuditFn]:
    """The most specific registered audit for ``cls`` (MRO order)."""
    for base in cls.__mro__:
        path = f"{base.__module__}.{base.__qualname__}"
        fn = _REGISTRY.get(path)
        if fn is not None:
            return fn
    return None


def audit(obj: object, level: AuditLevel = AuditLevel.FULL) -> AuditReport:
    """Run the registered audit for ``obj`` and report what it found.

    Raises :class:`TypeError` when no audit is registered for the
    object's type (use :func:`find_audit` to probe first).
    """
    fn = find_audit(type(obj))
    if fn is None:
        raise TypeError(
            f"no audit registered for {type(obj).__module__}."
            f"{type(obj).__qualname__} (see repro.check.registered_audits())"
        )
    report = AuditReport(
        target=type(obj).__qualname__, level=AuditLevel(level)
    )
    report.violations = list(fn(obj, AuditLevel(level)))
    report.checks_run = 1
    return report


# ----------------------------------------------------------------------
# Paranoid mode
# ----------------------------------------------------------------------
# The switch and the mutation hook live in the import-leaf
# :mod:`repro.check.hook` so that structure modules (``repro.core.file``
# and friends, which this module sits *above* in the import graph) can
# import them at module level; re-exported here for compatibility.
from .hook import maybe_audit, paranoid_enabled, set_paranoid  # noqa: E402
