"""Multilevel trie hashing — MLTH (Section 2.5, /LIT88/).

For files whose trie no longer fits main memory, the trie itself becomes
a dynamic multilevel hierarchy of pages on disk. Key search descends one
page per level carrying the Algorithm A1 state, then reads the bucket:
with the root page pinned in core, two levels address gigabyte-scale
files at two disk accesses per search — the paper's headline claim.

Page splits follow the paper's two phases: the *split node* is the
boundary nearest the page's middle whose logical parent lies outside the
page (conditions (i) and (ii)); the *trie splitting* phase moves it to
the parent page and divides the span. The split-node choice can be
shifted (``split_node_pick='last'``/``'first'``) for expected ordered
insertions, the Section 3.2 refinement that raises page loads to 70-87%.

:class:`MLTHFile` supports basic-TH and THCL split policies (including
split control); deletions remove records but do not merge pages — the
regime the paper itself analyses for MLTH.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterable, Iterator
from typing import Optional

from ..check.hook import maybe_audit
from ..obs.tracer import TRACER
from ..storage.buckets import BucketStore
from ..storage.buffer import BufferPool
from ..storage.disk import SimulatedDisk
from .alphabet import DEFAULT_ALPHABET, Alphabet
from .errors import CapacityError, DuplicateKeyError, KeyNotFoundError, TrieCorruptionError
from .file import FileStats
from .keys import common_prefix_length, prefix_gt
from .policies import SplitPolicy
from .split import plan_split
from .boundaries import BoundaryModel, boundary_sort_key
from .pages import TriePage

__all__ = ["MLTHFile"]

#: A descent step: (page id, page object, gap index taken).
_Step = tuple[int, TriePage, int]


class MLTHFile:
    """A trie-hashing file whose trie is paged to disk.

    Parameters
    ----------
    bucket_capacity:
        Records per data bucket (the paper's ``b``).
    page_capacity:
        Cells per trie page (the paper's ``b'``); a page splits when it
        would exceed this.
    policy:
        A :class:`SplitPolicy` with ``merge='none'`` and
        ``redistribution='none'`` (MLTH maintenance beyond record
        deletion is out of the paper's scope).
    pin_root:
        Keep the root page in core (the paper's standing assumption when
        counting two accesses per search).
    split_node_pick:
        ``'balanced'`` (default), or ``'last'``/``'first'`` for expected
        ascending/descending insertions (Section 3.2).
    """

    def __init__(
        self,
        bucket_capacity: int = 20,
        page_capacity: int = 64,
        policy: Optional[SplitPolicy] = None,
        alphabet: Alphabet = DEFAULT_ALPHABET,
        pin_root: bool = True,
        split_node_pick: str = "balanced",
        store: Optional[BucketStore] = None,
        page_buffer: int = 0,
    ):
        if bucket_capacity < 2:
            raise CapacityError("bucket capacity b must be at least 2")
        if page_capacity < 3:
            raise CapacityError("page capacity b' must be at least 3 cells")
        self.capacity = bucket_capacity
        self.page_capacity = page_capacity
        self.policy = policy if policy is not None else SplitPolicy(merge="none")
        if self.policy.merge not in ("none", "guaranteed"):
            raise CapacityError(
                "MLTHFile supports merge='none' or merge='guaranteed'"
            )
        if self.policy.redistribution != "none":
            raise CapacityError("MLTHFile supports redistribution='none' only")
        self.alphabet = alphabet
        self.split_node_pick = split_node_pick
        self.store = store if store is not None else BucketStore()
        self.page_disk = SimulatedDisk(name="pages")
        self.page_pool = BufferPool(self.page_disk, capacity=0)
        self.pin_root = pin_root
        root = TriePage(level=0, boundaries=[], children=[self.store.allocate()])
        self.root_id = self.page_pool.allocate(root)
        if pin_root:
            self.page_pool.pin(self.root_id)
        self.stats = FileStats()
        self._size = 0
        #: Optional :class:`~repro.storage.wal.WALWriter` recording every
        #: structure modification (attached by a durable session).
        self.journal = None
        self.policy.split_index(bucket_capacity)
        self.policy.bounding_index(bucket_capacity)

    # ------------------------------------------------------------------
    # Descent (multi-page Algorithm A1)
    # ------------------------------------------------------------------
    def _descend(self, key: str, pad: str = "min") -> tuple[list[_Step], int, str]:
        """Walk root page -> file page, returning the step list, j and C."""
        page_id = self.root_id
        matched, path = 0, ""
        steps: list[_Step] = []
        while True:
            page = self.page_pool.read(page_id)
            result = page.subtrie(self.alphabet).search(
                key, pad=pad, start_matched=matched, start_path=path
            )
            gap = result.ptr
            matched, path = result.matched, result.path
            steps.append((page_id, page, gap))
            if page.level == 0:
                return steps, matched, path
            page_id = page.children[gap]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, key: str) -> object:
        """Return the value under ``key`` (levels + 1 disk accesses)."""
        if TRACER.enabled:
            with TRACER.span("search", key=key):
                return self._get(key)
        return self._get(key)

    def _get(self, key: str) -> object:
        key = self.alphabet.validate_key(key)
        steps, _, _ = self._descend(key)
        _, page, gap = steps[-1]
        address = page.children[gap]
        self.stats.searches += 1
        if address is None:
            raise KeyNotFoundError(key)
        return self.store.read(address).get(key)

    def contains(self, key: str) -> bool:
        """True when ``key`` is stored."""
        if TRACER.enabled:
            with TRACER.span("search", key=key):
                return self._contains(key)
        return self._contains(key)

    def _contains(self, key: str) -> bool:
        try:
            self._get(key)
            return True
        except KeyNotFoundError:
            return False

    def __contains__(self, key: str) -> bool:
        return self.contains(key)

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, key: str, value: object = None) -> None:
        """Insert a record; raises :class:`DuplicateKeyError` if present."""
        if TRACER.enabled:
            with TRACER.span("insert", key=key):
                self._insert(key, value)
        else:
            self._insert(key, value)
        maybe_audit(self, f"MLTHFile.insert({key!r})")

    def put(self, key: str, value: object = None) -> None:
        """Insert or overwrite the record under ``key``."""
        if TRACER.enabled:
            with TRACER.span("insert", key=key):
                self._insert(key, value, replace=True)
        else:
            self._insert(key, value, replace=True)
        maybe_audit(self, f"MLTHFile.put({key!r})")

    def _insert(
        self, key: str, value: object = None, replace: bool = False
    ) -> None:
        key = self.alphabet.validate_key(key)
        steps, _, path = self._descend(key)
        page_id, page, gap = steps[-1]
        address = page.children[gap]
        if address is None:  # nil leaf of the basic method
            address = self.store.allocate()
            page.children[gap] = address
            page.invalidate()
            self.page_pool.write(page_id, page)
            bucket = self.store.peek(address)
            bucket.header_path = path
            bucket.insert(key, value)
            self.store.write(address, bucket)
            self.stats.nil_allocations += 1
            if TRACER.enabled:
                TRACER.emit("split", kind="nil-alloc", bucket=address)
        else:
            bucket = self.store.read(address)
            position = bucket.find(key)
            if position >= 0:
                if not replace:
                    raise DuplicateKeyError(key)
                bucket.values[position] = value
                self.store.write(address, bucket)
                return
            if len(bucket) < self.capacity:
                bucket.insert(key, value)
                self.store.write(address, bucket)
            else:
                self._split_bucket(steps, path, address, bucket, key, value)
        self.stats.inserts += 1
        self._size += 1

    def _split_bucket(
        self,
        steps: list[_Step],
        path: str,
        address: int,
        bucket,
        key: str,
        value: object,
    ) -> None:
        """Split an overflowing bucket and expand the paged trie."""
        records = list(bucket.items())
        at = bisect.bisect_left(bucket.keys, key)
        records.insert(at, (key, value))
        plan = plan_split(
            records,
            self.policy.split_index(self.capacity),
            self.policy.bounding_index(self.capacity),
            self.alphabet,
        )
        boundary = plan.boundary
        new_address = self.store.allocate()
        if self.policy.nil_nodes:
            # Basic method: one leaf per bucket, so the insert's descent
            # already sits at the split key's leaf (A2 steps 3.1-3.3).
            page_id, page, gap = steps[-1]
            shared = common_prefix_length(boundary, path)
            new_digits = len(boundary) - shared
            if new_digits < 1:
                raise TrieCorruptionError(
                    "basic-method split string already fully on the path"
                )
            chain = [boundary[:l] for l in range(len(boundary), shared, -1)]
            children: list[Optional[int]] = (
                [address, new_address] + [None] * (new_digits - 1)
            )
            page.splice(gap, chain, children, journal=self.journal)
            self.page_pool.write(page_id, page)
            self.stats.nodes_added += new_digits
            self._split_page_if_needed(steps, len(steps) - 1)
        else:
            # THCL: the split key may map to a *different* leaf of the
            # same bucket; the insertion helper re-locates it (step 3.0,
            # the extra page accesses the paper notes a split may take).
            self._insert_boundary_paged(
                plan.split_key, boundary, address, new_address, address
            )

        new_bucket = self.store.peek(new_address)
        new_bucket.header_path = bucket.header_path or path
        new_bucket.extend(plan.move)
        bucket.keys[:] = [k for k, _ in plan.stay]
        bucket.values[:] = [v for _, v in plan.stay]
        bucket.header_path = boundary
        self.store.write(address, bucket)
        self.store.write(new_address, new_bucket)
        self.stats.splits += 1
        if TRACER.enabled:
            TRACER.emit(
                "split",
                kind="basic" if self.policy.nil_nodes else "thcl",
                bucket=address,
                new_bucket=new_address,
                moved=len(plan.move),
                stayed=len(plan.stay),
            )

    def _insert_boundary_paged(
        self, anchor: str, boundary: str, left: int, right: int, old: int
    ) -> int:
        """THCL boundary insertion over the page hierarchy.

        The paged counterpart of
        :func:`repro.core.thcl_split.insert_boundary`: within the run of
        children carrying ``old``, gaps at or below ``boundary`` end up
        carrying ``left`` and gaps above it ``right``. Returns the
        number of cells added (0 for the step-3.4 case).
        """
        steps, _, path = self._descend(anchor)
        page_id, page, gap = steps[-1]
        if page.children[gap] != old:
            raise TrieCorruptionError(
                f"anchor {anchor!r} maps to {page.children[gap]}, expected {old}"
            )
        shared = common_prefix_length(boundary, path)
        new_digits = len(boundary) - shared
        if new_digits >= 1:
            chain = [boundary[:l] for l in range(len(boundary), shared, -1)]
            page.splice(gap, chain, [left] + [right] * new_digits, journal=self.journal)
            self.page_pool.write(page_id, page)
            if right != old:
                self._repoint_forward(steps, gap + new_digits, old, right)
            if left != old:
                self._repoint_backward(steps, gap, old, left)
            self.stats.nodes_added += new_digits
            self._split_page_if_needed(steps, len(steps) - 1)
            return new_digits
        edge_steps, _, _ = self._descend(boundary, pad="max")
        e_id, e_page, e_gap = edge_steps[-1]
        if e_page.children[e_gap] == old:
            e_page.children[e_gap] = left
            e_page.invalidate()
            self.page_pool.write(e_id, e_page)
        if right != old:
            self._repoint_forward(edge_steps, e_gap, old, right)
        if left != old:
            self._repoint_backward(edge_steps, e_gap, old, left)
        return 0

    def _repoint_forward(
        self, steps: list[_Step], from_gap: int, old: int, new: int
    ) -> None:
        """Step 3.5 across pages: repoint trailing ``old`` children.

        Walks the file-level gaps after ``from_gap`` (following the page
        chain — the access the paper notes a split "may require") and
        repoints children equal to ``old`` until another value appears.
        """
        page_id, page, _ = steps[-1]
        gap = from_gap + 1
        while True:
            while gap < len(page.children):
                child = page.children[gap]
                if child == new:
                    gap += 1
                    continue
                if child == old:
                    page.children[gap] = new
                    page.invalidate()
                    self.stats.leaves_repointed += 1
                    gap += 1
                    continue
                self.page_pool.write(page_id, page)
                return
            self.page_pool.write(page_id, page)
            if page.next_page is None:
                return
            page_id = page.next_page
            page = self.page_pool.read(page_id)
            gap = 0

    def _repoint_backward(
        self, steps: list[_Step], from_gap: int, old: int, new: int
    ) -> None:
        """Mirror of :meth:`_repoint_forward`: repoint leading children."""
        page_id, page, _ = steps[-1]
        gap = from_gap - 1
        while True:
            while gap >= 0:
                child = page.children[gap]
                if child == new:
                    gap -= 1
                    continue
                if child == old:
                    page.children[gap] = new
                    page.invalidate()
                    self.stats.leaves_repointed += 1
                    gap -= 1
                    continue
                self.page_pool.write(page_id, page)
                return
            self.page_pool.write(page_id, page)
            if page.prev_page is None:
                return
            page_id = page.prev_page
            page = self.page_pool.read(page_id)
            gap = len(page.children) - 1

    # ------------------------------------------------------------------
    # Page splitting (the two phases of Section 2.5)
    # ------------------------------------------------------------------
    def _split_one(self, page_id: int, page: TriePage) -> tuple[int, TriePage, str]:
        """Phase 1+2 for one page: choose the split node, divide the span.

        Returns ``(right page id, right page, separator boundary)``; the
        caller attaches the separator to the parent level.
        """
        split_at = page.choose_split_index(self.split_node_pick)
        separator = page.boundaries[split_at]
        right = TriePage(
            level=page.level,
            boundaries=page.boundaries[split_at + 1 :],
            children=page.children[split_at + 1 :],
            next_page=page.next_page,
            prev_page=page_id,
        )
        right_id = self.page_pool.allocate(right)
        if right.next_page is not None:
            after = self.page_pool.read(right.next_page)
            after.prev_page = right_id
            self.page_pool.write(right.next_page, after)
        page.boundaries = page.boundaries[:split_at]
        page.children = page.children[: split_at + 1]
        page.next_page = right_id
        page.invalidate()
        self.page_pool.write(page_id, page)
        self.page_pool.write(right_id, right)
        if self.journal is not None:
            self.journal.log_page_split(page_id, right_id, page.level, separator)
        if TRACER.enabled:
            TRACER.emit(
                "page_split",
                page=page_id,
                new_page=right_id,
                level=page.level,
                left_cells=page.cell_count,
                right_cells=right.cell_count,
            )
        return right_id, right, separator

    def _gap_for(self, parent: TriePage, separator: str) -> int:
        """The parent gap covering ``separator`` (its insert position)."""
        key = boundary_sort_key(separator, self.alphabet)
        keys = [boundary_sort_key(s, self.alphabet) for s in parent.boundaries]
        return bisect.bisect_left(keys, key)

    def _split_page_if_needed(self, steps: list[_Step], index: int) -> None:
        """Split overfull pages bottom-up along the descent path.

        A split's halves can themselves stay overfull when the span's
        valid split nodes sit near an end (long logical-parent chains),
        so each level runs a worklist until every produced page fits.
        """
        ancestry: list[tuple[int, TriePage]] = [
            (pid, pg) for pid, pg, _ in steps[: index + 1]
        ]
        level = len(ancestry) - 1
        while level >= 0:
            worklist = [ancestry[level]]
            while worklist:
                page_id, page = worklist.pop()
                while page.cell_count > self.page_capacity:
                    right_id, right, separator = self._split_one(page_id, page)
                    if level == 0:
                        new_root = TriePage(
                            level=page.level + 1,
                            boundaries=[separator],
                            children=[page_id, right_id],
                        )
                        new_root_id = self.page_pool.allocate(new_root)
                        if self.pin_root:
                            self.page_pool.unpin(self.root_id)
                            self.page_pool.pin(new_root_id)
                        self.root_id = new_root_id
                        self.page_pool.write(new_root_id, new_root)
                        ancestry.insert(0, (new_root_id, new_root))
                        level += 1
                    else:
                        parent_id, parent = ancestry[level - 1]
                        gap = self._gap_for(parent, separator)
                        parent.splice(
                            gap, [separator], [page_id, right_id], journal=self.journal
                        )
                        self.page_pool.write(parent_id, parent)
                    if right.cell_count > self.page_capacity:
                        worklist.append((right_id, right))
            level -= 1

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------
    def delete(self, key: str) -> object:
        """Remove a record and return its value.

        With ``merge='guaranteed'`` (THCL), buckets falling under the
        ``b // 2`` floor merge with or borrow from a neighbour, exactly
        as in the single-level file; trie nodes are left in place (the
        paper's recommended choice), so pages never shrink.
        """
        if TRACER.enabled:
            with TRACER.span("delete", key=key):
                value = self._delete(key)
        else:
            value = self._delete(key)
        maybe_audit(self, f"MLTHFile.delete({key!r})")
        return value

    def _delete(self, key: str) -> object:
        key = self.alphabet.validate_key(key)
        steps, _, _ = self._descend(key)
        _, page, gap = steps[-1]
        address = page.children[gap]
        if address is None:
            raise KeyNotFoundError(key)
        bucket = self.store.read(address)
        value = bucket.remove(key)
        self.store.write(address, bucket)
        self.stats.deletes += 1
        self._size -= 1
        if self.policy.merge == "guaranteed":
            self._rebalance_after_delete(key)
        return value

    def _positions_forward(self, steps: list[_Step]):
        """Yield (page_id, page, gap) after the descent's position."""
        page_id, page, gap = steps[-1]
        gap += 1
        while True:
            while gap < len(page.children):
                yield page_id, page, gap
                gap += 1
            if page.next_page is None:
                return
            page_id = page.next_page
            page = self.page_pool.read(page_id)
            gap = 0

    def _positions_backward(self, steps: list[_Step]):
        """Yield (page_id, page, gap) before the descent's position."""
        page_id, page, gap = steps[-1]
        gap -= 1
        while True:
            while gap >= 0:
                yield page_id, page, gap
                gap -= 1
            if page.prev_page is None:
                return
            page_id = page.prev_page
            page = self.page_pool.read(page_id)
            gap = len(page.children) - 1

    def _neighbor(self, steps: list[_Step], address: int, forward: bool):
        walker = self._positions_forward if forward else self._positions_backward
        for _, page, gap in walker(steps):
            child = page.children[gap]
            if child is not None and child != address:
                return child
        return None

    def _rebalance_after_delete(self, probe_key: str) -> None:
        from .keys import split_string

        while True:
            steps, _, _ = self._descend(probe_key)
            _, page, gap = steps[-1]
            address = page.children[gap]
            if address is None:
                return
            bucket = self.store.peek(address)
            if len(bucket) >= self.capacity // 2:
                return
            successor = self._neighbor(steps, address, forward=True)
            predecessor = self._neighbor(steps, address, forward=False)

            if successor is not None:
                s_bucket = self.store.read(successor)
                if len(bucket) + len(s_bucket) <= self.capacity:
                    bucket.extend(list(s_bucket.items()))
                    bucket.header_path = s_bucket.header_path
                    self.store.write(address, bucket)
                    self._merge_repoint(steps, successor, address)
                    self.store.free(successor)
                    self.stats.merges += 1
                    if self.journal is not None:
                        self.journal.log_merge("successor", address, successor)
                    if TRACER.enabled:
                        TRACER.emit("merge", kind="successor", bucket=address)
                    continue
            if predecessor is not None:
                p_bucket = self.store.read(predecessor)
                if len(bucket) + len(p_bucket) <= self.capacity:
                    p_bucket.extend(list(bucket.items()))
                    p_bucket.header_path = bucket.header_path
                    self.store.write(predecessor, p_bucket)
                    page.children[gap] = predecessor
                    page.invalidate()
                    self.page_pool.write(steps[-1][0], page)
                    self._repoint_forward(steps, gap, address, predecessor)
                    self._repoint_backward(steps, gap, address, predecessor)
                    self.store.free(address)
                    self.stats.merges += 1
                    if self.journal is not None:
                        self.journal.log_merge("predecessor", predecessor, address)
                    if TRACER.enabled:
                        TRACER.emit("merge", kind="predecessor", bucket=address)
                    continue
            if successor is not None:
                s_bucket = self.store.read(successor)
                combined = list(bucket.items()) + list(s_bucket.items())
                keep = len(combined) // 2
                anchor, bound = combined[keep - 1][0], combined[keep][0]
                cut = split_string(anchor, bound, self.alphabet)
                self._insert_boundary_paged(
                    anchor, cut, address, successor, successor
                )
                moved = combined[len(bucket) : keep]
                for k, _ in moved:
                    s_bucket.remove(k)
                bucket.extend(moved)
                bucket.header_path = cut  # the re-cut boundary, our right cut
                self.store.write(address, bucket)
                self.store.write(successor, s_bucket)
                self.stats.borrows += 1
                if self.journal is not None:
                    self.journal.log_borrow(cut, address, successor, len(moved))
                if TRACER.enabled:
                    TRACER.emit("rebalance", kind="borrow", bucket=address)
                continue
            if predecessor is not None:
                p_bucket = self.store.read(predecessor)
                combined = list(p_bucket.items()) + list(bucket.items())
                keep_left = (len(combined) + 1) // 2
                anchor, bound = combined[keep_left - 1][0], combined[keep_left][0]
                cut = split_string(anchor, bound, self.alphabet)
                self._insert_boundary_paged(
                    anchor, cut, predecessor, address, predecessor
                )
                moved = combined[keep_left : len(p_bucket)]
                for k, _ in moved:
                    p_bucket.remove(k)
                bucket.extend(moved)
                p_bucket.header_path = cut  # predecessor's new right cut
                self.store.write(address, bucket)
                self.store.write(predecessor, p_bucket)
                self.stats.borrows += 1
                if self.journal is not None:
                    self.journal.log_borrow(cut, predecessor, address, len(moved))
                if TRACER.enabled:
                    TRACER.emit("rebalance", kind="borrow", bucket=address)
                continue
            return

    def _merge_repoint(self, steps: list[_Step], old: int, new: int) -> None:
        """Repoint the contiguous run of ``old`` children onto ``new``.

        Used by merge-with-successor: walk forward past ``new``'s own
        run, then rewrite ``old``'s run.
        """
        for page_id, page, gap in self._positions_forward(steps):
            child = page.children[gap]
            if child == new:
                continue
            if child == old:
                page.children[gap] = new
                page.invalidate()
                self.page_pool.write(page_id, page)
            else:
                return

    # ------------------------------------------------------------------
    # Ordered iteration
    # ------------------------------------------------------------------
    def _file_pages(self) -> Iterator[tuple[int, TriePage]]:
        """File-level pages left to right (via the leaf chain)."""
        page_id = self.root_id
        page = self.page_pool.read(page_id)
        while page.level > 0:
            page_id = page.children[0]
            page = self.page_pool.read(page_id)
        while True:
            yield page_id, page
            if page.next_page is None:
                return
            page_id = page.next_page
            page = self.page_pool.read(page_id)

    def items(self) -> Iterator[tuple[str, object]]:
        """All records in key order."""
        previous = None
        for _, page in self._file_pages():
            for child in page.children:
                if child is None or child == previous:
                    continue
                previous = child
                yield from self.store.read(child).items()

    def keys(self) -> Iterator[str]:
        """All keys in key order."""
        for key, _ in self.items():
            yield key

    def range_items(
        self, low: Optional[str] = None, high: Optional[str] = None
    ) -> Iterator[tuple[str, object]]:
        """Records with ``low <= key <= high`` in key order."""
        it = self._range_items(low, high)
        if TRACER.enabled:
            return TRACER.wrap_iter("range", it)
        return it

    def _range_items(
        self, low: Optional[str] = None, high: Optional[str] = None
    ) -> Iterator[tuple[str, object]]:
        if low is not None:
            low = self.alphabet.validate_key(low)
        if high is not None:
            high = self.alphabet.validate_key(high)
        previous = None
        for _, page in self._file_pages():
            for gap, child in enumerate(page.children):
                if low is not None:
                    upper = (
                        page.boundaries[gap] if gap < len(page.boundaries) else None
                    )
                    if upper is not None and prefix_gt(low, upper, self.alphabet):
                        continue
                if child is None or child == previous:
                    continue
                previous = child
                bucket = self.store.read(child)
                begin = 0 if low is None else bisect.bisect_left(bucket.keys, low)
                for i in range(begin, len(bucket.keys)):
                    if high is not None and bucket.keys[i] > high:
                        return
                    yield bucket.keys[i], bucket.values[i]

    # ------------------------------------------------------------------
    # Batched operations
    # ------------------------------------------------------------------
    def get_many(self, keys: Iterable[str]) -> dict[str, object]:
        """Batched point lookups: ``{key: value}`` for the keys present.

        Same contract as :meth:`repro.core.file.THFile.get_many`: keys
        are validated, deduplicated and sorted once, located with one
        merged pass over the flattened boundary model, and each bucket
        is read at most once per batch (the page hierarchy is walked
        once for the whole batch instead of once per key).
        """
        unique = sorted({self.alphabet.validate_key(k) for k in keys})
        out: dict[str, object] = {}
        if not unique:
            return out
        model = self.flat_model()
        gaps = model.locate_sorted(unique)
        children = model.children
        read = self.store.read
        buckets_visited = 0
        i = 0
        n = len(unique)
        while i < n:
            address = children[gaps[i]]
            j = i + 1
            while j < n and children[gaps[j]] == address:
                j += 1
            self.stats.searches += j - i
            if address is not None:
                bucket = read(address)
                buckets_visited += 1
                bucket_keys = bucket.keys
                bucket_values = bucket.values
                size = len(bucket_keys)
                for key in unique[i:j]:
                    at = bisect.bisect_left(bucket_keys, key)
                    if at < size and bucket_keys[at] == key:
                        out[key] = bucket_values[at]
            i = j
        if TRACER.enabled:
            TRACER.emit(
                "batch", op="get_many", keys=n, buckets=buckets_visited
            )
        return out

    def put_many(self, items: Iterable[tuple[str, object]]) -> None:
        """Batched upsert of ``(key, value)`` pairs, later duplicates win.

        Pairs are validated, deduplicated and applied in sorted order —
        page splits move boundaries between pages, so each pair descends
        the (current) hierarchy itself; the batch still amortises the
        sort and keeps locality across the page pool.
        """
        validate = self.alphabet.validate_key
        last_wins: dict[str, object] = {}
        for key, value in items:
            last_wins[validate(key)] = value
        reads_before = self.store.stats.reads
        for key, value in sorted(last_wins.items()):
            self._insert(key, value, replace=True)
        if TRACER.enabled:
            TRACER.emit(
                "batch",
                op="put_many",
                keys=len(last_wins),
                buckets=self.store.stats.reads - reads_before,
            )
        maybe_audit(self, f"MLTHFile.put_many({len(last_wins)} keys)")

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def levels(self) -> int:
        """Number of page levels (1 = single root page)."""
        return self.page_pool.read(self.root_id).level + 1

    def page_count(self) -> int:
        """Total pages in the hierarchy."""
        return len(self.page_disk)

    def trie_size(self) -> int:
        """Total cells over all pages (the flat trie's ``M``)."""
        return sum(
            self.page_disk.peek(pid).cell_count for pid in self._all_page_ids()
        )

    def page_load_factor(self) -> float:
        """Mean page fill: cells used over page capacity (Section 3.2)."""
        loads = [
            self.page_disk.peek(pid).cell_count / self.page_capacity
            for pid in self._all_page_ids()
        ]
        return sum(loads) / len(loads) if loads else 0.0

    def bucket_count(self) -> int:
        """Allocated buckets (``N + 1``)."""
        return self.store.allocated_count()

    def load_factor(self) -> float:
        """Bucket load factor ``a = x / (b (N+1))``."""
        buckets = self.bucket_count()
        return self._size / (self.capacity * buckets) if buckets else 0.0

    def search_cost(self, key: str) -> tuple[int, int]:
        """(page reads, bucket reads) hitting the disk for one search."""
        pages_before = self.page_disk.stats.reads
        buckets_before = self.store.stats.reads
        try:
            self.get(key)
        except KeyNotFoundError:
            pass
        return (
            self.page_disk.stats.reads - pages_before,
            self.store.stats.reads - buckets_before,
        )

    def _all_page_ids(self) -> list[int]:
        ids: list[int] = []
        stack = [self.root_id]
        while stack:
            pid = stack.pop()
            ids.append(pid)
            page = self.page_disk.peek(pid)
            if page.level > 0:
                stack.extend(page.children)
        return ids

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def flat_model(self) -> BoundaryModel:
        """The file's global boundary model, flattened from the pages."""
        boundaries: list[str] = []
        children: list[Optional[int]] = []

        def visit(pid: int) -> None:
            page = self.page_disk.peek(pid)
            for i, child in enumerate(page.children):
                if page.level > 0:
                    visit(child)
                else:
                    children.append(child)
                if i < len(page.boundaries):
                    boundaries.append(page.boundaries[i])

        visit(self.root_id)
        return BoundaryModel(self.alphabet, boundaries, children)

    def check(self) -> None:
        """Verify the global structure and every stored key's mapping."""
        model = self.flat_model()
        model.check(require_prefix_closed=True)
        keys = [boundary_sort_key(s, self.alphabet) for s in model.boundaries]
        if any(not a < b for a, b in zip(keys, keys[1:])):
            raise TrieCorruptionError("page spans out of order")
        reachable = {c for c in model.children if c is not None}
        live = set(self.store.live_addresses())
        if reachable != live:
            raise AssertionError("page leaves disagree with live buckets")
        total = 0
        for address in live:
            bucket = self.store.peek(address)
            if len(bucket) > self.capacity:
                raise AssertionError(f"bucket {address} over capacity")
            total += len(bucket)
            for key in bucket.keys:
                if model.lookup(key) != address:
                    raise AssertionError(f"{key!r} mapped away from {address}")
                steps, _, _ = self._descend(key)
                _, page, gap = steps[-1]
                if page.children[gap] != address:
                    raise AssertionError(f"paged A1 maps {key!r} wrongly")
        if total != self._size:
            raise AssertionError("record count mismatch")
        for pid in self._all_page_ids():
            page = self.page_disk.peek(pid)
            if pid != self.root_id and page.cell_count > self.page_capacity:
                raise AssertionError(f"page {pid} over capacity")
