"""Section 3.1: random insertions.

Basic TH at the middle split key: a_r stays near 70% for every bucket
size, nil leaves are negligible (<~0.5%), the trie holds about one
six-byte cell per bucket, and the B-tree baseline needs several times
more branch bytes for the same file.
"""

from conftest import once

from repro.analysis import sec31_random


def test_sec31_random(benchmark, report):
    rows = once(
        benchmark,
        lambda: sec31_random(count=5000, bucket_capacities=(10, 20, 50)),
    )
    report(
        "sec31_random",
        rows,
        "Section 3.1 - random insertions: a_r ~ 70%, nil% < ~1, trie vs B-tree bytes",
    )
    for r in rows:
        assert 62 <= r["a_r%"] <= 78
        assert r["nil%"] <= 2.5  # paper: <0.5%; small b lands higher here
        assert r["trie_bytes"] < r["btree_index_bytes"]
        assert abs(r["M"] - r["N+1"]) <= 0.3 * r["N+1"]
