"""Buckets and the bucket store.

A bucket is the unit of transfer between the file and main memory: up to
``b`` records identified by primary key, kept sorted so that range scans
and split planning are sequential. Each bucket also carries a small
*header* with the logical path that last addressed it — the hook /TOR83/
uses to reconstruct a destroyed trie (see
:mod:`repro.core.reconstruct`).

:class:`BucketStore` allocates bucket addresses ``0, 1, 2, ...`` (the
paper's ``N`` counter), recycles freed addresses, and funnels every access
through a buffer pool so the benchmark harness sees exact disk-access
counts.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterator
from typing import Optional

from ..core.errors import DuplicateKeyError, KeyNotFoundError, StorageError
from .buffer import BufferPool
from .disk import DiskStats, SimulatedDisk

__all__ = ["Bucket", "BucketStore"]


class Bucket:
    """A sorted run of ``(key, value)`` records plus a small header.

    The bucket does not enforce the capacity ``b`` itself — overflow
    handling is the access method's job (a split happens *instead of*
    storing ``b + 1`` records) — but it exposes ``len(bucket)`` so the
    caller can decide.
    """

    __slots__ = ("keys", "values", "header_path")

    def __init__(self) -> None:
        self.keys: list[str] = []
        self.values: list[object] = []
        #: Logical path recorded at the last split that touched the bucket
        #: (the /TOR83/ reconstruction header).
        self.header_path: str = ""

    def __len__(self) -> int:
        return len(self.keys)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Bucket({self.keys!r})"

    def find(self, key: str) -> int:
        """Index of ``key`` or -1 when absent."""
        i = bisect.bisect_left(self.keys, key)
        if i < len(self.keys) and self.keys[i] == key:
            return i
        return -1

    def contains(self, key: str) -> bool:
        """True when the bucket stores ``key``."""
        return self.find(key) >= 0

    def get(self, key: str) -> object:
        """Value stored under ``key``; raises :class:`KeyNotFoundError`."""
        i = self.find(key)
        if i < 0:
            raise KeyNotFoundError(key)
        return self.values[i]

    def insert(self, key: str, value: object) -> None:
        """Insert a record, keeping order; duplicates are rejected."""
        i = bisect.bisect_left(self.keys, key)
        if i < len(self.keys) and self.keys[i] == key:
            raise DuplicateKeyError(key)
        self.keys.insert(i, key)
        self.values.insert(i, value)

    def replace(self, key: str, value: object) -> None:
        """Overwrite the value of an existing record."""
        i = self.find(key)
        if i < 0:
            raise KeyNotFoundError(key)
        self.values[i] = value

    def remove(self, key: str) -> object:
        """Delete a record and return its value."""
        i = self.find(key)
        if i < 0:
            raise KeyNotFoundError(key)
        del self.keys[i]
        return self.values.pop(i)

    def pop_range(self, lo: int, hi: int) -> list[tuple[str, object]]:
        """Remove and return records with indices ``[lo, hi)``."""
        taken = list(zip(self.keys[lo:hi], self.values[lo:hi]))
        del self.keys[lo:hi]
        del self.values[lo:hi]
        return taken

    def extend(self, records: list[tuple[str, object]]) -> None:
        """Bulk-insert records (caller guarantees disjoint key ranges)."""
        keys = self.keys
        if records and (not keys or keys[-1] < records[0][0]):
            new_keys = [k for k, _ in records]
            if all(a < b for a, b in zip(new_keys, new_keys[1:])):
                # Strictly ascending records that sit past the current
                # tail (the split path's "move" half always does): no
                # duplicate is possible, so append in two C-level bulks.
                keys.extend(new_keys)
                self.values.extend(v for _, v in records)
                return
        for key, value in records:
            self.insert(key, value)

    def items(self) -> Iterator[tuple[str, object]]:
        """Iterate the records in key order."""
        return iter(zip(self.keys, self.values))


class BucketStore:
    """Allocates and serves buckets through the metered storage stack.

    Parameters
    ----------
    disk:
        The backing device (a fresh unmetered one is created by default).
    buffer_capacity:
        LRU buffer size in buckets; 0 reproduces the paper's accounting
        where every bucket access is a disk access.
    """

    def __init__(
        self, disk: Optional[SimulatedDisk] = None, buffer_capacity: int = 0
    ):
        self.disk = disk if disk is not None else SimulatedDisk(name="buckets")
        self.pool = BufferPool(self.disk, buffer_capacity)
        self._blocks: list[Optional[int]] = []  # bucket address -> block id
        self._free: list[int] = []
        #: Optional :class:`~repro.storage.wal.WALWriter`; when attached
        #: (by a durable session) every allocate/write/free is journalled.
        self.journal = None

    @property
    def stats(self) -> DiskStats:
        """The device's :class:`~repro.storage.disk.DiskStats`."""
        return self.disk.stats

    def allocated_count(self) -> int:
        """Number of live buckets (the paper's ``N + 1``)."""
        return len(self._blocks) - len(self._free)

    def max_address(self) -> int:
        """Largest address ever allocated (the paper's ``N``)."""
        return len(self._blocks) - 1

    def allocate(self) -> int:
        """Create an empty bucket and return its address."""
        bucket = Bucket()
        if self._free:
            address = self._free.pop()
            self._blocks[address] = self.pool.allocate(bucket)
        else:
            self._blocks.append(self.pool.allocate(bucket))
            address = len(self._blocks) - 1
        if self.journal is not None:
            self.journal.log_bucket_create(address)
        return address

    def read(self, address: int) -> Bucket:
        """Fetch bucket ``address`` (metered through the buffer pool)."""
        return self.pool.read(self._block(address))

    def write(self, address: int, bucket: Bucket) -> None:
        """Write bucket ``address`` back (metered)."""
        self.pool.write(self._block(address), bucket)
        if self.journal is not None:
            self.journal.log_bucket_write(address, len(bucket))

    def free(self, address: int) -> None:
        """Release bucket ``address`` for reuse."""
        self.pool.free(self._block(address))
        self._blocks[address] = None
        self._free.append(address)
        if self.journal is not None:
            self.journal.log_bucket_free(address)

    def live_addresses(self) -> list[int]:
        """All currently allocated bucket addresses, ascending."""
        return [a for a, blk in enumerate(self._blocks) if blk is not None]

    def peek(self, address: int) -> Bucket:
        """Unmetered read, for metrics and tests."""
        return self.disk.peek(self._block(address))

    def _block(self, address: int) -> int:
        try:
            block = self._blocks[address]
        except IndexError:
            raise StorageError(f"bucket {address} was never allocated") from None
        if block is None:
            raise StorageError(f"bucket {address} was freed")
        return block
