"""Section 3.1's capacity arithmetic, re-derived and checked.

Not a simulation — the paper's published buffer/page/record figures
computed from the layout constants (6-byte cells) and the measured load
factors, row for row.
"""

from conftest import once

from repro.analysis import capacity_table
from repro.analysis.capacity import addressable_buckets, bilevel_records


def test_capacity_arithmetic(benchmark, report):
    rows = once(benchmark, capacity_table)
    report(
        "capacity",
        rows,
        "Section 3.1 - capacity planning arithmetic, paper vs computed",
    )
    assert 950 <= addressable_buckets(6 * 1024) <= 1100
    assert 10000 <= addressable_buckets(64 * 1024) <= 11500
    assert 10e6 < bilevel_records(10 * 1024, 20) < 25e6
    assert bilevel_records(64 * 1024, 20) > 600e6
