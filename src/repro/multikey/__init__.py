"""Multikey (multi-attribute) trie hashing — Section 6's last proposal.

The paper closes: "one should extend TH to the multikey case ... As
tries remain compact in presence of uneven distributions, one may expect
them to offer an alternative to the grid files without the phenomenon of
exponential growth of the directory."

This package realises the straightforward construction: the digits of k
fixed-width attributes are interleaved (a base-|alphabet| Morton / z
order), and the composite keys live in an ordinary :class:`THFile`. The
z-curve's bounding property turns an axis-aligned rectangle query into
one composite-key range scan plus a per-record filter.

:mod:`grid_model` implements the comparison target: a faithful
miniature of the grid file's directory (split lines per dimension, the
directory being their cross product), whose size under skewed data
grows multiplicatively — the pathology the paper predicts tries avoid.
"""

from .grid_model import GridDirectoryModel
from .interleave import Interleaver
from .mkfile import MultikeyTHFile

__all__ = ["Interleaver", "MultikeyTHFile", "GridDirectoryModel"]
