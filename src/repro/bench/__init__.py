"""The perf-trajectory benchmark harness (ROADMAP item 5).

This package is the importable home of the repo's benchmark program:

* :mod:`repro.bench.suites` — the four standard suites (``core``,
  ``distributed``, ``chaos``, ``throughput``), each a deterministic
  seeded workload returning one JSON-ready result document;
* :mod:`repro.bench.harness` — :func:`~repro.bench.harness.reproduce`,
  which runs a profile of those suites into a per-run artifact
  directory (``manifest.json`` / ``metrics.jsonl`` / ``summary.json``)
  and regenerates the committed top-level ``BENCH_*.json`` trajectory
  files that ``scripts/bench_gate.py`` diffs in CI.

The thin wrappers ``benchmarks/smoke.py``, ``benchmarks/bench_chaos.py``
and ``benchmarks/harness.py`` and the ``trie-hashing reproduce`` CLI all
route through here, so every artifact in the trajectory comes off one
code path with one config vocabulary.

Determinism contract: every *structural* number a suite reports (record
counts, splits, retries, dedup hits, simulated clocks and latencies) is
a pure function of ``(count, seed)`` — the workloads use seeded
``random.Random`` and the simulated fabric clock — so the gate compares
them **exactly**. Only wall-clock rates (``*_per_s`` keys) are machine
dependent and ratio-gated.
"""

from .harness import PROFILES, reproduce
from .suites import (
    SUITES,
    chaos_suite,
    core_suite,
    distributed_suite,
    throughput_suite,
)

__all__ = [
    "PROFILES",
    "reproduce",
    "SUITES",
    "core_suite",
    "distributed_suite",
    "chaos_suite",
    "throughput_suite",
]
