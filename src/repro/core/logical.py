"""The M-ary *logical structure* embedded in a TH-trie (Fig 2).

Section 2.1: the binary TH-trie embeds an M-ary trie — the classical
digit trie — through the logical paths. Internal nodes of the logical
structure are digits arranged in levels (all ``(d, i)`` with the same
``i`` form level ``i``), edges link logical parents to logical children,
and leaves are bucket addresses.

In the boundary view this is immediate: every boundary string *is* a
logical node (its digits spell the root-to-node path), its logical
parent is its one-digit-shorter prefix, and the bucket left of the
boundary hangs under it. This module materialises that view for
inspection, rendering and tests.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Optional

from .trie import Trie

__all__ = ["LogicalNode", "logical_structure"]


class LogicalNode:
    """One digit of the M-ary structure.

    ``path`` spells the digits from the root (so ``path[-1]`` is this
    node's digit and ``len(path) - 1`` its level); ``children`` are the
    logical children in digit order; ``bucket`` is the leaf hanging
    immediately under this node (the bucket left of its boundary), or
    ``None`` for a nil leaf.
    """

    __slots__ = ("path", "children", "bucket")

    def __init__(self, path: str):
        self.path = path
        self.children: list[LogicalNode] = []
        self.bucket: Optional[int] = None

    @property
    def digit(self) -> str:
        """The digit this node represents."""
        return self.path[-1]

    @property
    def level(self) -> int:
        """The digit number ``i`` (level in the logical structure)."""
        return len(self.path) - 1

    def walk(self) -> Iterator[LogicalNode]:
        """Yield every node of the subtree, preorder."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LogicalNode({self.path!r}, bucket={self.bucket})"


class LogicalStructure:
    """The full M-ary view of one trie."""

    def __init__(self, roots: list[LogicalNode], rightmost: Optional[int]):
        #: Level-0 digits in order.
        self.roots = roots
        #: The bucket right of every boundary (the paper draws it as the
        #: rightmost leaf of the structure).
        self.rightmost_bucket = rightmost

    def levels(self) -> dict[int, list[str]]:
        """Digits per level, left to right — Fig 2's rows."""
        out: dict[int, list[str]] = {}
        for root in self.roots:
            for node in root.walk():
                out.setdefault(node.level, []).append(node.digit)
        return out

    def node_count(self) -> int:
        """Total logical nodes (equals the binary trie's cell count)."""
        return sum(1 for root in self.roots for _ in root.walk())

    def buckets_in_order(self) -> list[Optional[int]]:
        """Leaf buckets left to right, nil leaves as ``None``."""
        out: list[Optional[int]] = []

        def visit(node: LogicalNode) -> None:
            # A node's own bucket is its leftmost leaf (keys <= path),
            # then its children's subtrees follow in digit order...
            # Inorder of the binary trie: extensions first, then the
            # node's gap. Reconstruct from children recursively:
            for child in node.children:
                visit(child)
            out.append(node.bucket)

        for root in self.roots:
            visit(root)
        out.append(self.rightmost_bucket)
        return out


def logical_structure(trie: Trie) -> LogicalStructure:
    """Build Fig 2's M-ary view from a trie."""
    model = trie.to_model()
    nodes: dict[str, LogicalNode] = {}
    roots: list[LogicalNode] = []
    # Boundaries arrive in inorder (extensions before their prefixes);
    # iterate and attach each to its logical parent.
    for j, boundary in enumerate(model.boundaries):
        node = nodes.setdefault(boundary, LogicalNode(boundary))
        node.bucket = model.children[j]
    for boundary in sorted(nodes, key=len):
        node = nodes[boundary]
        if len(boundary) == 1:
            roots.append(node)
        else:
            parent = nodes.get(boundary[:-1])
            if parent is None:  # cannot happen for prefix-closed sets
                roots.append(node)
            else:
                parent.children.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda n: n.path)
    roots.sort(key=lambda n: n.path)
    rightmost = model.children[-1] if model.children else None
    return LogicalStructure(roots, rightmost)
