"""Deletions: bucket merging and load guarantees.

Two regimes from the paper:

* **Basic TH (Section 2.4, 3.3)** — only *sibling* leaves (two leaves
  under the same cell) may merge, and an emptied bucket whose leaf has no
  sibling leaf becomes a nil leaf. This cannot guarantee a minimum load —
  the paper counts only 4 of the 10 successive-bucket couples of the
  example file as mergeable.

* **THCL guaranteed load (Section 4.3)** — successive buckets always
  merge by pointing all their leaves at the surviving bucket, and when a
  merge does not fit, keys are *borrowed* across the boundary (the same
  :func:`~repro.core.thcl_split.insert_boundary` primitive as splits).
  Every bucket then keeps at least ``b // 2`` records, as in a B-tree.

The module also provides :func:`mergeable_couples`, the analysis behind
the paper's 4-of-10 vs 8-of-10 rotation discussion (Section 3.3).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .alphabet import Alphabet
from .cells import NIL, is_edge, is_leaf, is_nil
from .keys import split_string
from .thcl_split import insert_boundary
from .trie import Location, ROOT_LOCATION, SearchResult, Trie

if TYPE_CHECKING:  # import cycles: storage <-> core at runtime
    from ..storage.buckets import BucketStore
    from ..storage.wal import WALWriter
    from .file import THFile

__all__ = [
    "basic_delete_maintenance",
    "guaranteed_delete_maintenance",
    "mergeable_couples",
]


def _parent_location(trail: tuple[tuple[int, str], ...]) -> Location:
    """Location of the slot holding the last cell of ``trail``."""
    if len(trail) >= 2:
        return Location(*trail[-2])
    return ROOT_LOCATION


def basic_delete_maintenance(
    trie: Trie,
    store: BucketStore,
    result: SearchResult,
    capacity: int,
    journal: Optional[WALWriter] = None,
) -> Optional[str]:
    """Post-delete maintenance of the basic method.

    ``result`` is the search that located the deleted key. Merges the
    bucket with its sibling leaf when their records fit together, or
    turns an emptied sibling-less leaf into a nil leaf. Returns a short
    action string for statistics (``None`` when nothing was done).
    """
    address = result.bucket
    bucket = store.peek(address)
    if not result.trail:
        return None  # single-bucket file: the root leaf stays
    cell_index, side = result.trail[-1]
    cell = trie.cells[cell_index]
    other_side = "R" if side == "L" else "L"
    sibling_ptr = cell.child(other_side)

    if is_edge(sibling_ptr):
        # No sibling leaf; an empty bucket becomes a nil leaf (freed).
        if len(bucket) == 0:
            trie.set_ptr(Location(cell_index, side), NIL)
            store.free(address)
            return "nil"
        return None

    if is_nil(sibling_ptr):
        # Empty bucket with an (empty) nil sibling: the whole node goes.
        if len(bucket) == 0:
            trie.set_ptr(_parent_location(result.trail), NIL)
            trie.cells.free(cell_index)
            store.free(address)
            return "nil"
        return None

    sibling_addr = sibling_ptr
    sibling = store.read(sibling_addr)
    if len(bucket) + len(sibling) > capacity:
        return None
    # Merge: the left leaf's bucket survives (inverse of a split).
    if side == "L":
        survivor_addr, survivor, victim_addr, victim = (
            address,
            bucket,
            sibling_addr,
            sibling,
        )
    else:
        survivor_addr, survivor, victim_addr, victim = (
            sibling_addr,
            sibling,
            address,
            bucket,
        )
    survivor.extend(list(victim.items()))
    # The union's right cut is the right-hand (victim) bucket's cut, so
    # the /TOR83/ reconstruction headers stay truthful across merges.
    survivor.header_path = victim.header_path
    trie.set_ptr(_parent_location(result.trail), survivor_addr)
    trie.cells.free(cell_index)
    store.write(survivor_addr, survivor)
    store.free(victim_addr)
    if journal is not None:
        journal.log_merge("siblings", survivor_addr, victim_addr)
    return "merge"


def rotation_delete_maintenance(file: THFile, result: SearchResult) -> Optional[str]:
    """Basic-method merging extended with valid rotations (Section 3.3).

    Two successive leaves that are not siblings can still merge when
    *some* equivalent trie makes them siblings — possible exactly when
    the boundary between them is not the logical parent of any other
    boundary. Instead of performing the rotation sequence node by node,
    the merge is realised canonically: drop the boundary from the
    equivalent model and rebuild (the /TOR83/ balancing machinery),
    which is what the chain of valid rotations amounts to.

    Falls back to the plain sibling merge when that already applies.
    Returns an action string or ``None``.
    """
    action = basic_delete_maintenance(
        file.trie, file.store, result, file.capacity, journal=file.journal
    )
    if action is not None:
        return action

    trie = file.trie
    address = result.bucket
    bucket = file.store.peek(address)
    boundaries = trie.boundaries()
    prefixes = set()
    for s in boundaries:
        for l in range(1, len(s)):
            prefixes.add(s[:l])

    def try_merge(own_cut: str, survivor_first: bool, other: int) -> bool:
        if own_cut == "" or own_cut in prefixes:
            return False  # boundary absent or pinned by a logical child
        other_bucket = file.store.read(other)
        if len(bucket) + len(other_bucket) > file.capacity:
            return False
        model = trie.to_model()
        model.remove_boundary(
            own_cut, keep="left" if survivor_first else "right"
        )
        if survivor_first:
            survivor, victim = address, other
            bucket.extend(list(other_bucket.items()))
            bucket.header_path = other_bucket.header_path
            file.store.write(address, bucket)
        else:
            survivor, victim = other, address
            other_bucket.extend(list(bucket.items()))
            other_bucket.header_path = bucket.header_path
            file.store.write(other, other_bucket)
        # Point the merged gap at the survivor, then rebuild.
        for j, child in enumerate(model.children):
            if child == victim:
                model.set_child(j, survivor)
        file.store.free(victim)
        file.trie = Trie.from_model(model)
        if file.journal is not None:
            file.journal.log_merge("rotation", survivor, victim)
        return True

    # Try the successor first: the boundary between is our leaf's path.
    for _, ptr in trie.successor_leaves(list(result.trail)):
        if is_leaf(ptr) and ptr != address:
            if try_merge(result.path, True, ptr):
                return "rotation-merge"
        break
    # Then the predecessor: the boundary is *its* path (its right cut).
    for _location, ptr in trie.predecessor_leaves(list(result.trail)):
        if is_leaf(ptr) and ptr != address:
            index = [p for _, p, _ in trie.leaves_in_order()].index(address)
            if index > 0:
                previous_cut = trie.boundaries()[index - 1]
                if try_merge(previous_cut, False, ptr):
                    return "rotation-merge"
        break
    return None


def _neighbor_after(trie: Trie, trail, address: int) -> Optional[int]:
    """Bucket address of the inorder successor bucket, if any."""
    for _, ptr in trie.successor_leaves(list(trail)):
        if is_leaf(ptr) and ptr != address:
            return ptr
        if is_nil(ptr):
            continue
    return None


def _neighbor_before(trie: Trie, trail, address: int) -> Optional[int]:
    """Bucket address of the inorder predecessor bucket, if any."""
    for _, ptr in trie.predecessor_leaves(list(trail)):
        if is_leaf(ptr) and ptr != address:
            return ptr
        if is_nil(ptr):
            continue
    return None


def _repoint_run(trie: Trie, trail, old: int, new: int, start_loc: Location):
    """Repoint the contiguous leaf run of bucket ``old`` to ``new``.

    The run is located around ``trail`` (a search trail ending inside the
    run). Also repoints the trail's own leaf.
    """
    if trie.get_ptr(start_loc) == old:
        trie.set_ptr(start_loc, new)
    for location, ptr in trie.successor_leaves(list(trail)):
        if is_leaf(ptr) and ptr == old:
            trie.set_ptr(location, new)
        else:
            break
    for location, ptr in trie.predecessor_leaves(list(trail)):
        if is_leaf(ptr) and ptr == old:
            trie.set_ptr(location, new)
        else:
            break


def guaranteed_delete_maintenance(
    trie: Trie,
    store: BucketStore,
    result: SearchResult,
    capacity: int,
    alphabet: Alphabet,
    journal: Optional[WALWriter] = None,
) -> Optional[str]:
    """THCL post-delete maintenance guaranteeing >= ``b // 2`` records.

    Merges the underfull bucket with a neighbour when their contents fit
    in one bucket, otherwise borrows keys across the boundary by
    re-cutting it in the middle (Section 4.3). Returns an action string
    or ``None``.
    """
    address = result.bucket
    min_load = capacity // 2
    bucket = store.peek(address)
    if len(bucket) >= min_load:
        return None

    successor = _neighbor_after(trie, result.trail, address)
    predecessor = _neighbor_before(trie, result.trail, address)

    # --- Merge with the successor: survivor is this (left) bucket.
    if successor is not None:
        s_bucket = store.read(successor)
        if len(bucket) + len(s_bucket) <= capacity:
            bucket.extend(list(s_bucket.items()))
            bucket.header_path = s_bucket.header_path
            for location, ptr in trie.successor_leaves(list(result.trail)):
                if is_leaf(ptr) and ptr in (address, successor):
                    if ptr == successor:
                        trie.set_ptr(location, address)
                else:
                    break
            store.write(address, bucket)
            store.free(successor)
            if journal is not None:
                journal.log_merge("successor", address, successor)
            return "merge"

    # --- Merge with the predecessor: survivor is the (left) predecessor.
    if predecessor is not None:
        p_bucket = store.read(predecessor)
        if len(bucket) + len(p_bucket) <= capacity:
            p_bucket.extend(list(bucket.items()))
            p_bucket.header_path = bucket.header_path
            _repoint_run(trie, result.trail, address, predecessor, result.location)
            store.write(predecessor, p_bucket)
            store.free(address)
            if journal is not None:
                journal.log_merge("predecessor", predecessor, address)
            return "merge"

    # --- Borrow from the successor: move its lowest keys down.
    if successor is not None:
        s_bucket = store.read(successor)
        combined = list(bucket.items()) + list(s_bucket.items())
        keep = len(combined) // 2
        if keep > len(bucket):  # at least one record moves
            anchor = combined[keep - 1][0]
            bound = combined[keep][0]
            cut = split_string(anchor, bound, alphabet)
            insert_boundary(
                trie, anchor, cut, address, successor, successor, journal=journal
            )
            moved = combined[len(bucket) : keep]
            for key, _ in moved:
                s_bucket.remove(key)
            bucket.extend(moved)
            bucket.header_path = cut  # the re-cut boundary is our right cut
            store.write(address, bucket)
            store.write(successor, s_bucket)
            if journal is not None:
                journal.log_borrow(cut, address, successor, len(moved))
            return "borrow"

    # --- Borrow from the predecessor: move its highest keys up.
    if predecessor is not None:
        p_bucket = store.read(predecessor)
        combined = list(p_bucket.items()) + list(bucket.items())
        keep_left = (len(combined) + 1) // 2
        if keep_left < len(p_bucket):  # at least one record moves
            anchor = combined[keep_left - 1][0]
            bound = combined[keep_left][0]
            cut = split_string(anchor, bound, alphabet)
            insert_boundary(
                trie, anchor, cut, predecessor, address, predecessor, journal=journal
            )
            moved = combined[keep_left : len(p_bucket)]
            for key, _ in moved:
                p_bucket.remove(key)
            bucket.extend(moved)
            p_bucket.header_path = cut  # predecessor's new right cut
            store.write(address, bucket)
            store.write(predecessor, p_bucket)
            if journal is not None:
                journal.log_borrow(cut, predecessor, address, len(moved))
            return "borrow"

    return None


def mergeable_couples(trie: Trie) -> tuple[list[tuple[int, int]], list[tuple[int, int]]]:
    """Which successive bucket couples could merge (Section 3.3 analysis).

    Returns ``(as_siblings, with_rotations)``:

    * ``as_siblings`` — couples whose leaves already share a cell, the
      only merges the basic algorithm performs;
    * ``with_rotations`` — couples that *some* equivalent trie makes
      siblings: the boundary between them must not be the logical parent
      (a proper prefix) of any other boundary, otherwise that descendant
      can never be moved from under it.

    On the paper's 31-word example file these come out 4 and 8 of the 10
    couples, with the couples around buckets (9,4) and (2,3) impossible
    even with rotations — exactly the figures of Section 3.3.
    """
    as_siblings: list[tuple[int, int]] = []
    with_rotations: list[tuple[int, int]] = []
    events = list(trie.inorder())
    boundaries = [e[2] for e in events if e[0] == "node"]
    prefixes = set()
    for s in boundaries:
        for l in range(1, len(s)):
            prefixes.add(s[:l])
    leaf_events = [e for e in events if e[0] == "leaf"]
    node_events = [e for e in events if e[0] == "node"]
    for j, node in enumerate(node_events):
        left_leaf = leaf_events[j]
        right_leaf = leaf_events[j + 1]
        if not (is_leaf(left_leaf[2]) and is_leaf(right_leaf[2])):
            continue
        couple = (left_leaf[2], right_leaf[2])
        boundary = node[2]
        left_loc, right_loc = left_leaf[1], right_leaf[1]
        if (
            left_loc.cell == right_loc.cell
            and left_loc.side == "L"
            and right_loc.side == "R"
        ):
            as_siblings.append(couple)
        if boundary not in prefixes:
            with_rotations.append(couple)
    return as_siblings, with_rotations
