"""The bridge from the event stream to the metrics registry.

A :class:`MetricsRecorder` is a tracer sink that folds every event into
a :class:`~repro.obs.metrics.MetricsRegistry`:

* every event name → ``repro_events_total{event=...}``;
* device accesses → ``repro_disk_accesses_total{device=...,kind=...}``
  (these equal the :class:`~repro.storage.disk.DiskStats` deltas over
  the traced window, per device — the reconciliation anchor);
* buffer traffic → ``repro_buffer_requests_total{result=hit|miss}``
  (the snapshot derives the hit rate);
* root span ends → ``repro_span_accesses{op=...}`` and, when a latency
  model contributed simulated time, ``repro_span_seconds{op=...}``
  histograms. Only *root* spans are observed so a ``put`` implemented
  via ``insert`` counts one operation, not two;
* splits → ``repro_split_fanout`` (records moved to the new bucket)
  and ``repro_split_nodes_added`` (trie cells added) histograms;
* batched operations → ``compact_batch_ops_total{op=...}`` /
  ``compact_batch_keys_total{op=...}`` counters and the
  ``compact_batch_buckets`` bucket-visit histogram (how many buckets
  one batch touched — the amortisation the batch paths exist for).
"""

from __future__ import annotations

from .events import Event
from .metrics import (
    ACCESS_BUCKETS,
    FANOUT_BUCKETS,
    LATENCY_BUCKETS,
    MetricsRegistry,
)

__all__ = ["MetricsRecorder"]


class MetricsRecorder:
    """Tracer sink that maintains the standard instrument set."""

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry

    def on_event(self, event: Event) -> None:
        """Fold one event into the registry."""
        reg = self.registry
        reg.counter("repro_events_total", {"event": event.name}).inc()
        name = event.name
        if name == "disk_read" or name == "disk_write":
            reg.counter(
                "repro_disk_accesses_total",
                {
                    "device": event.fields.get("device", "disk"),
                    "kind": "write" if name == "disk_write" else "read",
                },
            ).inc()
            seconds = event.fields.get("seconds")
            if seconds:
                reg.counter(
                    "repro_disk_seconds_total",
                    {"device": event.fields.get("device", "disk")},
                ).inc(seconds)
        elif name == "buffer_hit" or name == "buffer_miss":
            reg.counter(
                "repro_buffer_requests_total",
                {"result": "hit" if name == "buffer_hit" else "miss"},
            ).inc()
        elif name == "span_end":
            if event.fields.get("parent") is None:
                op = {"op": event.fields.get("op", "?")}
                reg.histogram(
                    "repro_span_accesses", op, bounds=ACCESS_BUCKETS
                ).observe(event.fields.get("accesses", 0))
                seconds = event.fields.get("seconds", 0.0)
                if seconds:
                    reg.histogram(
                        "repro_span_seconds", op, bounds=LATENCY_BUCKETS
                    ).observe(seconds)
        elif name == "split":
            moved = event.fields.get("moved")
            if moved is not None:
                reg.histogram(
                    "repro_split_fanout", bounds=FANOUT_BUCKETS
                ).observe(moved)
            nodes = event.fields.get("nodes_added")
            if nodes is not None:
                reg.histogram(
                    "repro_split_nodes_added", bounds=FANOUT_BUCKETS
                ).observe(nodes)
        elif name == "batch":
            op = {"op": event.fields.get("op", "?")}
            reg.counter("compact_batch_ops_total", op).inc()
            reg.counter("compact_batch_keys_total", op).inc(
                event.fields.get("keys", 0)
            )
            buckets = event.fields.get("buckets")
            if buckets is not None:
                reg.histogram(
                    "compact_batch_buckets", op, bounds=ACCESS_BUCKETS
                ).observe(buckets)
        elif name == "shard_split":
            moved = event.fields.get("moved")
            if moved is not None:
                reg.histogram(
                    "repro_shard_split_moved", bounds=ACCESS_BUCKETS
                ).observe(moved)
        elif name == "forward":
            reg.counter(
                "repro_forwards_total", {"op": event.fields.get("op", "?")}
            ).inc()
        elif name == "net_fault":
            reg.counter(
                "repro_net_faults_total",
                {
                    "kind": event.fields.get("kind", "?"),
                    "edge": event.fields.get("edge", "?"),
                },
            ).inc()
        elif name == "op_retry":
            reg.counter(
                "repro_op_retries_total",
                {"reason": event.fields.get("reason", "?")},
            ).inc()
        elif name == "server_recover":
            replayed = event.fields.get("replayed")
            if replayed is not None:
                reg.histogram(
                    "repro_recovery_replayed", bounds=ACCESS_BUCKETS
                ).observe(replayed)
        elif name == "trace_end":
            reg.counter("repro_unattributed_reads_total").inc(
                event.fields.get("unattributed_reads", 0)
            )
            reg.counter("repro_unattributed_writes_total").inc(
                event.fields.get("unattributed_writes", 0)
            )
