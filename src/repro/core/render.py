"""ASCII rendering of tries and files — Fig 1(c) and Fig 2 on a terminal.

Purely presentational: used by the CLI ``demo`` command, the examples
and debugging sessions. The binary view prints each internal node as
``(d,i)`` with its boundary, indenting by depth; the logical view prints
the M-ary digit levels of Fig 2.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .cells import edge_target, is_edge, is_nil
from .logical import logical_structure
from .trie import Trie

if TYPE_CHECKING:  # avoid a module cycle with .file
    from .file import THFile

__all__ = ["render_trie", "render_logical", "render_file"]


def render_trie(trie: Trie) -> str:
    """The binary trie, rotated: right subtree above, left below.

    Leaves print as bucket addresses (or ``nil``); internal nodes as
    ``(d,i)``. Reading top to bottom gives descending key order, like
    the figures in the paper read left to right.
    """
    lines: list[str] = []

    def visit(ptr: int, depth: int) -> None:
        pad = "    " * depth
        if not is_edge(ptr):
            lines.append(f"{pad}[nil]" if is_nil(ptr) else f"{pad}[{ptr}]")
            return
        cell = trie.cells[edge_target(ptr)]
        visit(cell.rp, depth + 1)
        lines.append(f"{pad}({cell.dv},{cell.dn})")
        visit(cell.lp, depth + 1)

    visit(trie.root, 0)
    return "\n".join(lines)


def render_logical(trie: Trie) -> str:
    """Fig 2's logical structure: one row per digit level."""
    structure = logical_structure(trie)
    lines = []
    for level, digits in sorted(structure.levels().items()):
        lines.append(f"level {level}: " + " ".join(digits))
    buckets = " ".join(
        "nil" if b is None else str(b) for b in structure.buckets_in_order()
    )
    lines.append(f"leaves : {buckets}")
    return "\n".join(lines)


def render_file(file: THFile) -> str:
    """Buckets and trie of a :class:`~repro.core.file.THFile`, together."""
    parts = [
        f"records={len(file)} buckets={file.bucket_count()} "
        f"cells={file.trie_size()} load={file.load_factor():.1%}",
        "",
        "buckets:",
    ]
    for address in sorted(file.store.live_addresses()):
        bucket = file.store.peek(address)
        parts.append(f"  {address:3d}: {' '.join(bucket.keys)}")
    parts += ["", "trie:", render_trie(file.trie)]
    return "\n".join(parts)
