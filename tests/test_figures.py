"""Tests for the ASCII figure renderer."""

from repro.analysis.figures import ascii_chart, fig_curves


class TestAsciiChart:
    def test_renders_markers_and_axes(self):
        chart = ascii_chart(
            {"up": [(0, 0), (1, 1), (2, 4)], "down": [(0, 4), (2, 0)]},
            width=20,
            height=8,
            title="T",
        )
        lines = chart.splitlines()
        assert lines[0] == "T"
        assert "*" in chart and "o" in chart
        assert "4.0" in chart and "0.0" in chart
        assert "* up" in chart and "o down" in chart

    def test_empty(self):
        assert "(no data)" in ascii_chart({}, title="empty")

    def test_single_point(self):
        chart = ascii_chart({"p": [(5, 5)]})
        assert "*" in chart

    def test_constant_series(self):
        # Zero y-span must not divide by zero.
        chart = ascii_chart({"flat": [(0, 3), (1, 3), (2, 3)]})
        assert chart.count("*") >= 1


class TestFigCurves:
    ROWS = [
        {"b": 10, "d": 0, "a%": 100.0, "M": 200},
        {"b": 10, "d": 2, "a%": 90.0, "M": 150},
        {"b": 10, "d": 4, "a%": 80.0, "M": 160},
        {"b": 20, "d": 0, "a%": 100.0, "M": 100},
    ]

    def test_filters_by_bucket_size(self):
        chart = fig_curves(self.ROWS, 10)
        assert "b = 10" in chart
        assert "a%" in chart and "M (% of peak)" in chart

    def test_missing_bucket_size(self):
        assert "no rows" in fig_curves(self.ROWS, 99)

    def test_m_normalised_to_peak(self):
        chart = fig_curves(self.ROWS, 10)
        # Peak M (200) renders as the 100-line top of the M curve; axis
        # top is 100.
        assert "100.0" in chart
