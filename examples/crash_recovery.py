#!/usr/bin/env python
"""Trie reconstruction after a crash (/TOR83/, Section 6).

Every bucket header stores the logical path that last addressed it, so
the access structure is redundant: if the in-core trie is lost, one
sweep of the buckets rebuilds an equivalent — and canonically balanced —
trie. This example destroys the trie of a loaded file, reconstructs it,
verifies every record, and shows the depth improvement the paper
mentions ("the reconstructed trie may be in addition better balanced").

Run:  python examples/crash_recovery.py
"""

from repro import THFile
from repro.core.reconstruct import reconstruct_trie
from repro.workloads import synthetic_dictionary


def main() -> None:
    words = synthetic_dictionary(6000, seed=42)
    f = THFile(bucket_capacity=10)
    for w in words:  # sorted insertions: produces a badly skewed trie
        f.insert(w)

    print(f"loaded {len(f)} words into {f.bucket_count()} buckets")
    print(f"original trie : {f.trie_size()} cells, depth {f.trie.depth()}")

    # --- The crash ------------------------------------------------------
    lost_depth = f.trie.depth()
    f.trie = None  # the in-core trie is gone
    print("\n*** crash: in-core trie lost ***\n")

    # --- Recovery: one sweep of the buckets -----------------------------
    reads_before = f.store.disk.stats.reads
    f.trie = reconstruct_trie(f.store, f.alphabet)
    sweep = f.store.disk.stats.reads - reads_before
    print(f"reconstructed from bucket headers in {sweep} bucket reads")
    print(
        f"rebuilt trie  : {f.trie.node_count} cells, depth "
        f"{f.trie.depth()} (was {lost_depth})"
    )

    # --- Verify and resume normal service --------------------------------
    for w in words:
        assert f.contains(w), w
    missing = sum(1 for w in ("zzzz", "qqqq") if f.contains(w))
    assert missing == 0
    f.insert("zzzz")
    f.check()
    print("\nall records verified; file accepts new insertions - recovered.")


if __name__ == "__main__":
    main()
