"""Analytic-model tests: simulation vs closed-form estimates."""

import math

import pytest

from repro import SplitPolicy, THFile
from repro.analysis.theory import (
    RANDOM_LOAD_FACTOR,
    compare_with_theory,
    expected_bucket_count,
    expected_index_bytes,
    expected_load_factor,
    expected_trie_depth,
)
from repro.core.balance import balance
from repro.workloads import KeyGenerator


class TestFormulas:
    def test_random_constant(self):
        assert RANDOM_LOAD_FACTOR == pytest.approx(0.6931, abs=1e-4)

    def test_deterministic_ordered_formula(self):
        assert expected_load_factor("ascending", 20, d=0) == 1.0
        assert expected_load_factor("ascending", 20, d=5) == 0.75
        assert expected_load_factor("descending", 10, d=0) == 1.0

    def test_non_deterministic_band(self):
        assert 0.5 < expected_load_factor("ascending", 20, deterministic=False) < 0.75

    def test_unknown_order_rejected(self):
        with pytest.raises(ValueError):
            expected_load_factor("sideways", 10)

    def test_bucket_count(self):
        assert expected_bucket_count(1000, 10, 1.0) == 100
        assert expected_bucket_count(1000, 10, 0.5) == 200
        assert expected_bucket_count(1001, 10, 1.0) == 101

    def test_depth(self):
        assert expected_trie_depth(1024) == pytest.approx(10.0)
        assert expected_trie_depth(1024, balanced=False) == pytest.approx(20.0)
        assert expected_trie_depth(0) == 0.0

    def test_index_bytes(self):
        assert expected_index_bytes(101, growth_rate=1.0) == 600


class TestSimulationAgreement:
    def test_random_load_near_ln2(self):
        keys = KeyGenerator(17).uniform(4000)
        f = THFile(bucket_capacity=20)
        for k in keys:
            f.insert(k)
        assert f.load_factor() == pytest.approx(RANDOM_LOAD_FACTOR, abs=0.06)

    def test_ascending_deterministic_exact(self):
        keys = KeyGenerator(18).sorted_keys(3000)
        for d in (0, 2, 5):
            f = THFile(bucket_capacity=20, policy=SplitPolicy.thcl_ascending(d))
            for k in keys:
                f.insert(k)
            predicted = expected_load_factor("ascending", 20, d=d)
            assert f.load_factor() == pytest.approx(predicted, abs=0.03)

    def test_bucket_count_prediction(self):
        keys = KeyGenerator(19).sorted_keys(3000)
        f = THFile(bucket_capacity=20, policy=SplitPolicy.thcl_ascending(0))
        for k in keys:
            f.insert(k)
        predicted = expected_bucket_count(3000, 20, 1.0)
        assert abs(f.bucket_count() - predicted) <= 1

    def test_balanced_depth_near_log2(self):
        keys = KeyGenerator(20).uniform(3000)
        f = THFile(bucket_capacity=10)
        for k in keys:
            f.insert(k)
        balanced = balance(f.trie)
        assert balanced.depth() <= 2.5 * math.log2(f.trie_size())

    def test_compare_with_theory_report(self):
        keys = KeyGenerator(21).sorted_keys(2000)
        f = THFile(bucket_capacity=10, policy=SplitPolicy.thcl_ascending(0))
        for k in keys:
            f.insert(k)
        report = compare_with_theory(f, "ascending", d=0)
        assert report["measured_load"] == pytest.approx(
            report["predicted_load"], abs=0.02
        )
        assert abs(report["measured_buckets"] - report["predicted_buckets"]) <= 1
