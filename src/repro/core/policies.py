"""Split and maintenance policies.

Everything the paper tunes lives here: the split-key position ``m``
(Sections 2.3 and 3.2), THCL's bounding-key position that bounds the
split's randomness (Section 4.2), whether nil nodes exist (basic TH) or
leaves are shared (THCL, Section 4.1), redistribution (Section 4.4), and
the deletion/merging regime (Sections 2.4, 3.3, 4.3).

The factory classmethods encode the paper's named configurations, e.g.
``SplitPolicy.thcl_ascending(d=2)`` is one point on the Figure 10 sweep
(split key at ``m = b - d``, deterministic split, no nil nodes).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from .errors import CapacityError

__all__ = ["SplitPolicy"]


@dataclass(frozen=True)
class SplitPolicy:
    """Immutable configuration of the splitting/maintenance behaviour.

    Parameters
    ----------
    split_position:
        The paper's ``m``: 1-based position of the split key within the
        ordered sequence ``B`` of ``b + 1`` keys. ``None`` selects the
        default middle position ``INT(b/2) + 1`` used for random
        insertions. Negative values count from the top (``-1`` = position
        ``b``, the highest key that can be a split key).
    split_fraction:
        Alternative to ``split_position``: ``m = round(fraction * b)``
        clamped into ``[1, b]``. The paper writes these as ``m = 0.4b``
        etc. Exactly one of the two may be set.
    bounding_offset:
        THCL split control (Section 4.2): the bounding key sits at
        position ``m + bounding_offset``. ``None`` reproduces the basic
        method's partly random split (bounding key = the last key,
        ``c''``); ``1`` makes every split deterministic.
    nil_nodes:
        ``True`` is the basic method of /LIT81/ (rare-case splits create
        nil leaves); ``False`` is THCL (several leaves may share a
        bucket, no nil leaves ever; Section 4.1).
    redistribution:
        ``'none'``, ``'successor'``, ``'predecessor'`` or ``'both'``
        (Section 4.4). Requires ``nil_nodes=False``.
    redistribution_target:
        ``'compact'`` moves as few keys as possible off the overflowing
        bucket (Fig 9's maximal-load variant); ``'even'`` balances the
        two buckets (the classic B-tree behaviour that yields the ~87%
        random load).
    merge:
        Deletion regime: ``'none'`` (logical deletes only), ``'siblings'``
        (basic TH, Section 2.4: only sibling leaves merge), or
        ``'guaranteed'`` (THCL, Section 4.3: successive buckets merge or
        borrow, keeping every bucket at least half full).
    prefer_existing_boundary:
        The Section 4.5 refinement: when the overflowing bucket spans
        several leaves, scan split-key candidates above the basic
        position for one whose split string is already fully on the
        logical path — a split through step 3.4 that adds **no** trie
        node. Requires ``nil_nodes=False``.
    collapse_equal_leaves:
        After redistribution, remove trie nodes whose two children became
        identical leaves (Fig 9's optional shrink). Off by default: the
        paper argues leaving cells in place helps concurrency (/VID87/).
    """

    split_position: Optional[int] = None
    split_fraction: Optional[float] = None
    bounding_offset: Optional[int] = None
    nil_nodes: bool = True
    redistribution: str = "none"
    redistribution_target: str = "even"
    merge: str = "siblings"
    prefer_existing_boundary: bool = False
    collapse_equal_leaves: bool = False

    def __post_init__(self) -> None:
        if self.split_position is not None and self.split_fraction is not None:
            raise CapacityError("set split_position or split_fraction, not both")
        if self.bounding_offset is not None and self.bounding_offset < 1:
            raise CapacityError("bounding_offset must be >= 1")
        if self.redistribution not in ("none", "successor", "predecessor", "both"):
            raise CapacityError(f"unknown redistribution {self.redistribution!r}")
        if self.merge == "rotations" and not self.nil_nodes:
            raise CapacityError(
                "rotation merging is the basic method's refinement "
                "(nil_nodes=True); THCL uses merge='guaranteed'"
            )
        if self.redistribution_target not in ("compact", "even"):
            raise CapacityError(
                f"unknown redistribution_target {self.redistribution_target!r}"
            )
        if self.merge not in ("none", "siblings", "rotations", "guaranteed"):
            raise CapacityError(f"unknown merge policy {self.merge!r}")
        if self.redistribution != "none" and self.nil_nodes:
            raise CapacityError(
                "redistribution needs THCL shared leaves (nil_nodes=False)"
            )
        if self.merge == "guaranteed" and self.nil_nodes:
            raise CapacityError(
                "the guaranteed-load merge regime needs THCL (nil_nodes=False)"
            )
        if self.prefer_existing_boundary and self.nil_nodes:
            raise CapacityError(
                "prefer_existing_boundary needs THCL shared leaves"
            )

    # ------------------------------------------------------------------
    # Derived positions
    # ------------------------------------------------------------------
    def split_index(self, bucket_capacity: int) -> int:
        """The split key's 1-based position ``m`` for capacity ``b``."""
        b = bucket_capacity
        if self.split_position is not None:
            m = self.split_position if self.split_position > 0 else b + 1 + self.split_position
        elif self.split_fraction is not None:
            m = round(self.split_fraction * b)
        else:
            m = b // 2 + 1  # the paper's INT(b/2 + 1) default
        if not 1 <= m <= b:
            raise CapacityError(
                f"split position {m} outside [1, {b}] for capacity {b}"
            )
        return m

    def bounding_index(self, bucket_capacity: int) -> int:
        """The bounding key's 1-based position (``b + 1`` = basic method)."""
        b = bucket_capacity
        m = self.split_index(b)
        if self.bounding_offset is None:
            return b + 1
        return min(b + 1, m + self.bounding_offset)

    def with_(self, **changes) -> SplitPolicy:
        """A copy of this policy with the given fields replaced."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    # The paper's named configurations
    # ------------------------------------------------------------------
    @classmethod
    def basic_th(cls, split_position: Optional[int] = None) -> SplitPolicy:
        """Basic trie hashing of /LIT81/ (nil nodes, random split tail)."""
        return cls(split_position=split_position)

    @classmethod
    def thcl(
        cls,
        split_position: Optional[int] = None,
        bounding_offset: Optional[int] = 1,
        merge: str = "guaranteed",
    ) -> SplitPolicy:
        """General THCL: shared leaves, deterministic splits by default."""
        return cls(
            split_position=split_position,
            bounding_offset=bounding_offset,
            nil_nodes=False,
            merge=merge,
        )

    @classmethod
    def thcl_ascending(cls, d: int = 0) -> SplitPolicy:
        """Figure 10 point: expected ascending insertions, ``m = b - d``.

        ``d = 0`` builds the most compact file (a = 100%); small positive
        ``d`` trades a few percent of load for a much smaller trie.
        """
        if d < 0:
            raise CapacityError("d = b - m must be non-negative")
        return cls(
            split_position=-(d + 1),  # m = b - d counted from the top
            bounding_offset=1,
            nil_nodes=False,
            merge="guaranteed",
        )

    @classmethod
    def thcl_descending(cls, d: int = 0) -> SplitPolicy:
        """Figure 11 point: expected descending insertions.

        The split key is the lowest key (``m = 1``); the bounding key sits
        ``d + 1`` positions above it (the paper's ``d = m'' - m - 1``).
        ``d = 0`` is fully deterministic and yields a = 100%.
        """
        if d < 0:
            raise CapacityError("d = m'' - m - 1 must be non-negative")
        return cls(
            split_position=1,
            bounding_offset=d + 1,
            nil_nodes=False,
            merge="guaranteed",
        )

    @classmethod
    def thcl_guaranteed_half(cls) -> SplitPolicy:
        """Unexpected ordered insertions: exactly 50% load whatever the
        key order (middle split key, deterministic split; Section 4.5)."""
        return cls(bounding_offset=1, nil_nodes=False, merge="guaranteed")

    @classmethod
    def thcl_redistributing(cls, target: str = "even") -> SplitPolicy:
        """THCL with B-tree-style redistribution before splitting."""
        return cls(
            bounding_offset=1,
            nil_nodes=False,
            redistribution="both",
            redistribution_target=target,
            merge="guaranteed",
        )
