"""Digit interleaving of fixed-width attributes (base-M Morton order).

Each attribute occupies a declared width; shorter values pad on the
right with the alphabet's space digit (trie hashing's native
convention). The composite key takes digits round-robin — attribute 0's
digit 0, attribute 1's digit 0, ..., attribute 0's digit 1, ... — which
is exactly the z-order curve in base ``len(alphabet)``.

The property the rectangle query relies on: interleaving is monotone in
every coordinate, so every point of an axis-aligned box has a composite
key between the composite keys of the box's min and max corners.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..core.alphabet import DEFAULT_ALPHABET, Alphabet
from ..core.errors import InvalidKeyError

__all__ = ["Interleaver"]


class Interleaver:
    """Composes/decomposes fixed-width attribute tuples.

    Parameters
    ----------
    widths:
        Digits reserved per attribute (its maximum length).
    alphabet:
        Shared attribute alphabet.
    """

    def __init__(self, widths: Sequence[int], alphabet: Alphabet = DEFAULT_ALPHABET):
        if not widths or any(w < 1 for w in widths):
            raise InvalidKeyError("attribute widths must be positive")
        self.widths = tuple(widths)
        self.alphabet = alphabet
        # Precompute, for each composite position, (attribute, digit).
        self._layout: list[tuple[int, int]] = []
        for round_no in range(max(self.widths)):
            for dim, width in enumerate(self.widths):
                if round_no < width:
                    self._layout.append((dim, round_no))

    @property
    def dimensions(self) -> int:
        """Number of attributes."""
        return len(self.widths)

    @property
    def composite_width(self) -> int:
        """Total digits of a composite key."""
        return len(self._layout)

    # ------------------------------------------------------------------
    def _pad(self, values: Sequence[str]) -> list[str]:
        if len(values) != len(self.widths):
            raise InvalidKeyError(
                f"expected {len(self.widths)} attributes, got {len(values)}"
            )
        padded = []
        for value, width in zip(values, self.widths):
            if len(value) > width:
                raise InvalidKeyError(
                    f"attribute {value!r} exceeds its width {width}"
                )
            for ch in value:
                if ch not in self.alphabet:
                    raise InvalidKeyError(f"digit {ch!r} outside the alphabet")
            padded.append(value.ljust(width, self.alphabet.min_digit))
        return padded

    def compose(self, values: Sequence[str]) -> str:
        """Interleave the attributes into one composite key."""
        padded = self._pad(values)
        key = "".join(padded[dim][digit] for dim, digit in self._layout)
        canon = key.rstrip(self.alphabet.min_digit)
        if not canon:
            raise InvalidKeyError("composite key is all padding")
        return canon

    def decompose(self, key: str) -> tuple[str, ...]:
        """Recover the attribute tuple from a composite key."""
        if len(key) > self.composite_width:
            raise InvalidKeyError("composite key longer than the layout")
        parts = [[self.alphabet.min_digit] * w for w in self.widths]
        for at, ch in enumerate(key):
            dim, digit = self._layout[at]
            parts[dim][digit] = ch
        return tuple(
            "".join(p).rstrip(self.alphabet.min_digit) for p in parts
        )

    # ------------------------------------------------------------------
    def low_corner(self, lows: Sequence[str]) -> str:
        """Composite key of a box's minimum corner (open bounds -> min)."""
        values = [
            (v if v is not None else "") for v in lows
        ]
        padded = self._pad(values)
        return "".join(padded[dim][digit] for dim, digit in self._layout)

    def high_corner(self, highs: Sequence[str]) -> str:
        """Composite key of a box's maximum corner (open bounds -> max)."""
        values = []
        for v, width in zip(highs, self.widths):
            if v is None:
                values.append(self.alphabet.max_digit * width)
            else:
                if len(v) > width:
                    raise InvalidKeyError(f"{v!r} exceeds width {width}")
                # Keys at or below v in this coordinate can carry any
                # padding digits after v's own, so pad the corner high.
                values.append(v.ljust(width, self.alphabet.max_digit))
        padded = self._pad(values)
        return "".join(padded[dim][digit] for dim, digit in self._layout)
