"""The versioned wire codec of the TH* serving tier.

Everything a client and a shard server exchange — operations, replies,
request ids, IAM entries, trace contexts and exception outcomes — is
encoded here into a self-describing binary form, so a message crossing
any transport (a real socket or the in-process fabric) is a *value*,
never a shared Python reference. Routing the in-process
:class:`~repro.distributed.router.Router` through the same codec is
what structurally eliminates the aliasing bug where a client mutating a
``get`` result (or a value it just ``put``) silently mutated the
shard's stored record.

Three layers:

* **Values** — a tagged union covering ``None``, booleans, integers
  (with a big-int escape), floats, strings, bytes, lists, tuples,
  dicts, sets and exception instances. Tuples and lists are *distinct*
  tags: IAM entries, request ids, trace contexts and scan records must
  come back as the tuples the rest of the layer pattern-matches on.
* **Messages** — :func:`encode_op` / :func:`decode_op` and
  :func:`encode_reply` / :func:`decode_reply` serialise the slot tuples
  of :class:`~repro.distributed.messages.Op` and
  :class:`~repro.distributed.messages.Reply`. Exceptions travel as a
  ``(code, message)`` pair through the :data:`ERROR_CODES` registry and
  come back as fresh instances of the same class, so ``raise
  reply.error`` behaves identically on either side of a wire.
* **Frames** — the length-prefixed envelope of the asyncio serving
  protocol (:mod:`repro.serving`)::

      u32 length | u8 version | u8 kind | u32 corr_id | payload

  ``length`` counts everything after itself. ``corr_id`` is the
  pipelining correlation id the client matches replies with. A version
  mismatch or malformed payload raises
  :class:`~repro.distributed.errors.ProtocolError` — wire damage is a
  protocol violation, never a silent misdecode.
"""

from __future__ import annotations

import io
import struct
from typing import Optional

from ..check.framework import ParanoidAuditError
from ..core import errors as core_errors
from ..core.cursor import CursorInvalidError
from . import errors as dist_errors
from .errors import ProtocolError
from .messages import Op, Reply

__all__ = [
    "WIRE_VERSION",
    "FRAME_REQUEST",
    "FRAME_RESPONSE",
    "FRAME_CONTROL",
    "FRAME_CONTROL_REPLY",
    "ERROR_CODES",
    "encode_value",
    "decode_value",
    "encode_op",
    "decode_op",
    "encode_reply",
    "decode_reply",
    "roundtrip_op",
    "roundtrip_reply",
    "pack_frame",
    "unpack_frame",
]

#: Bump on any incompatible change to the value or message layout.
WIRE_VERSION = 1

#: Frame kinds.
FRAME_REQUEST = 1  # payload: u32 shard_id | encoded Op
FRAME_RESPONSE = 2  # payload: u8 status (0=Reply, 1=raised) | body
FRAME_CONTROL = 3  # payload: encoded dict command
FRAME_CONTROL_REPLY = 4  # payload: u8 status | encoded value / error

_FRAME_HEAD = struct.Struct(">BBI")  # version, kind, corr_id
_U32 = struct.Struct(">I")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")
_U16 = struct.Struct(">H")

#: The typed exceptions that may travel in a reply or as a raised
#: outcome. Codes are wire contract — append only, never renumber.
ERROR_CODES: dict[int, type] = {
    1: core_errors.TrieHashingError,
    2: core_errors.InvalidKeyError,
    3: core_errors.DuplicateKeyError,
    4: core_errors.KeyNotFoundError,
    5: core_errors.CapacityError,
    6: core_errors.TrieCorruptionError,
    7: core_errors.StorageError,
    8: core_errors.RecoveryError,
    9: dist_errors.DistributedError,
    10: dist_errors.ConfigurationError,
    11: dist_errors.UnknownShardError,
    12: dist_errors.ProtocolError,
    13: dist_errors.RetryableError,
    14: dist_errors.MessageLostError,
    15: dist_errors.OpTimeoutError,
    16: dist_errors.ServerDownError,
    17: dist_errors.ShardUnavailableError,
    18: dist_errors.ReplicationError,
    19: dist_errors.ReplicaStaleError,
    20: dist_errors.FailoverError,
    # 21-23 registered by the TH011 exhaustiveness audit: each of these
    # is raisable from code reachable off the dispatch surface (a stale
    # scan cursor, an injected crash fault surfacing mid-op, a paranoid
    # audit tripping under a serving shard) and must survive the wire
    # with its type intact instead of degrading to the catch-all.
    21: CursorInvalidError,
    22: core_errors.CrashError,
    23: ParanoidAuditError,
}
_CODE_OF = {cls: code for code, cls in ERROR_CODES.items()}


def _error_code(exc: BaseException) -> int:
    """The registry code for ``exc`` (nearest registered ancestor)."""
    code = _CODE_OF.get(type(exc))
    if code is not None:
        return code
    for klass in type(exc).__mro__[1:]:
        code = _CODE_OF.get(klass)
        if code is not None:
            return code
    return 1  # the TrieHashingError catch-all


def _error_message(exc: BaseException) -> str:
    """The message to ship (unwraps KeyError's repr-quoting)."""
    if isinstance(exc, KeyError) and exc.args and isinstance(exc.args[0], str):
        return exc.args[0]
    return str(exc)


# ----------------------------------------------------------------------
# Value layer
# ----------------------------------------------------------------------
def _write_str(out: io.BytesIO, text: str) -> None:
    data = text.encode("utf-8")
    out.write(_U32.pack(len(data)))
    out.write(data)


def _write_value(out: io.BytesIO, value: object) -> None:
    if value is None:
        out.write(b"N")
    elif value is True:
        out.write(b"T")
    elif value is False:
        out.write(b"F")
    elif isinstance(value, int):
        if -(2**63) <= value < 2**63:
            out.write(b"i")
            out.write(_I64.pack(value))
        else:
            out.write(b"I")
            _write_str(out, str(value))
    elif isinstance(value, float):
        out.write(b"f")
        out.write(_F64.pack(value))
    elif isinstance(value, str):
        out.write(b"s")
        _write_str(out, value)
    elif isinstance(value, bytes):
        out.write(b"b")
        out.write(_U32.pack(len(value)))
        out.write(value)
    elif isinstance(value, tuple):
        out.write(b"t")
        out.write(_U32.pack(len(value)))
        for item in value:
            _write_value(out, item)
    elif isinstance(value, list):
        out.write(b"l")
        out.write(_U32.pack(len(value)))
        for item in value:
            _write_value(out, item)
    elif isinstance(value, dict):
        out.write(b"d")
        out.write(_U32.pack(len(value)))
        for key, item in value.items():
            _write_value(out, key)
            _write_value(out, item)
    elif isinstance(value, (set, frozenset)):
        out.write(b"S")
        out.write(_U32.pack(len(value)))
        # Sorted for a canonical encoding (sets have no wire order).
        for item in sorted(value, key=repr):
            _write_value(out, item)
    elif isinstance(value, BaseException):
        out.write(b"e")
        out.write(_U16.pack(_error_code(value)))
        _write_str(out, _error_message(value))
    else:
        raise ProtocolError(
            f"value of type {type(value).__name__!r} is not wire-encodable"
        )


def encode_value(value: object) -> bytes:
    """Encode one value into the tagged-union wire form."""
    out = io.BytesIO()
    _write_value(out, value)
    return out.getvalue()


def _read_exactly(stream: io.BytesIO, count: int) -> bytes:
    data = stream.read(count)
    if len(data) < count:
        raise ProtocolError("truncated value payload")
    return data


def _read_str(stream: io.BytesIO) -> str:
    (length,) = _U32.unpack(_read_exactly(stream, 4))
    try:
        return _read_exactly(stream, length).decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"malformed string payload: {exc}") from None


def _read_value(stream: io.BytesIO) -> object:
    tag = stream.read(1)
    if tag == b"N":
        return None
    if tag == b"T":
        return True
    if tag == b"F":
        return False
    if tag == b"i":
        return _I64.unpack(_read_exactly(stream, 8))[0]
    if tag == b"I":
        return int(_read_str(stream))
    if tag == b"f":
        return _F64.unpack(_read_exactly(stream, 8))[0]
    if tag == b"s":
        return _read_str(stream)
    if tag == b"b":
        (length,) = _U32.unpack(_read_exactly(stream, 4))
        return _read_exactly(stream, length)
    if tag == b"t":
        (count,) = _U32.unpack(_read_exactly(stream, 4))
        return tuple(_read_value(stream) for _ in range(count))
    if tag == b"l":
        (count,) = _U32.unpack(_read_exactly(stream, 4))
        return [_read_value(stream) for _ in range(count)]
    if tag == b"d":
        (count,) = _U32.unpack(_read_exactly(stream, 4))
        return {_read_value(stream): _read_value(stream) for _ in range(count)}
    if tag == b"S":
        (count,) = _U32.unpack(_read_exactly(stream, 4))
        return {_read_value(stream) for _ in range(count)}
    if tag == b"e":
        (code,) = _U16.unpack(_read_exactly(stream, 2))
        message = _read_str(stream)
        klass = ERROR_CODES.get(code)
        if klass is None:
            raise ProtocolError(f"unknown wire error code {code}")
        return klass(message)
    raise ProtocolError(f"unknown value tag {tag!r}")


def decode_value(data: bytes) -> object:
    """Decode one value; trailing bytes are a protocol violation."""
    stream = io.BytesIO(data)
    value = _read_value(stream)
    if stream.read(1):
        raise ProtocolError("trailing bytes after value")
    return value


# ----------------------------------------------------------------------
# Message layer
# ----------------------------------------------------------------------
def encode_op(op: Op) -> bytes:
    """Serialise an :class:`Op` (its eight slots, as one tuple)."""
    return encode_value(
        (op.kind, op.key, op.value, op.low, op.high, op.after, op.rid, op.ctx)
    )


def decode_op(data: bytes) -> Op:
    """Rebuild an :class:`Op` from :func:`encode_op` output."""
    fields = decode_value(data)
    if not isinstance(fields, tuple) or len(fields) != 8:
        raise ProtocolError("malformed op payload")
    kind, key, value, low, high, after, rid, ctx = fields
    return Op(kind, key=key, value=value, low=low, high=high,
              after=after, rid=rid, ctx=ctx)


def encode_reply(reply: Reply) -> bytes:
    """Serialise a :class:`Reply` (its ten slots, as one tuple)."""
    return encode_value(
        (
            reply.value,
            reply.error,
            reply.iam,
            reply.forwards,
            reply.owner,
            reply.records,
            reply.region_high,
            reply.done,
            reply.dedup,
            reply.ctx,
        )
    )


def decode_reply(data: bytes) -> Reply:
    """Rebuild a :class:`Reply` from :func:`encode_reply` output."""
    fields = decode_value(data)
    if not isinstance(fields, tuple) or len(fields) != 10:
        raise ProtocolError("malformed reply payload")
    value, error, iam, forwards, owner, records, region_high, done, dedup, ctx = fields
    if error is not None and not isinstance(error, BaseException):
        raise ProtocolError("reply error field does not decode to an exception")
    return Reply(
        value=value,
        error=error,
        iam=iam,
        forwards=forwards,
        owner=owner,
        records=records,
        region_high=region_high,
        done=done,
        dedup=dedup,
        ctx=ctx,
    )


def roundtrip_op(op: Op) -> Op:
    """Encode + decode an op — the in-process wire boundary."""
    return decode_op(encode_op(op))


def roundtrip_reply(reply: Reply) -> Reply:
    """Encode + decode a reply — the in-process wire boundary."""
    return decode_reply(encode_reply(reply))


# ----------------------------------------------------------------------
# Frame layer
# ----------------------------------------------------------------------
def pack_frame(kind: int, corr_id: int, payload: bytes) -> bytes:
    """One length-prefixed frame ready for a stream transport."""
    head = _FRAME_HEAD.pack(WIRE_VERSION, kind, corr_id)
    return _U32.pack(len(head) + len(payload)) + head + payload


def unpack_frame(body: bytes) -> tuple[int, int, bytes]:
    """Split a frame body (everything after the length prefix).

    Returns ``(kind, corr_id, payload)``; rejects unknown versions.
    """
    if len(body) < _FRAME_HEAD.size:
        raise ProtocolError(f"frame body of {len(body)} bytes is too short")
    version, kind, corr_id = _FRAME_HEAD.unpack_from(body)
    if version != WIRE_VERSION:
        raise ProtocolError(
            f"wire version {version} is not the supported {WIRE_VERSION}"
        )
    return kind, corr_id, body[_FRAME_HEAD.size:]
