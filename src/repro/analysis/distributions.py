"""Distributional statistics behind the paper's aggregate numbers.

The paper explains its curves through distributions it never plots: the
d = 0 trie is large because *adjacent keys share more digits*, so split
strings get longer (Section 4.5 (i)); bucket loads oscillate around the
mean; ordered insertions skew leaf depths. This module computes those
distributions so the explanations can be checked, not just quoted:

* :func:`bucket_load_histogram` — records per bucket;
* :func:`boundary_length_histogram` — split-string (boundary) lengths,
  the direct driver of trie size;
* :func:`leaf_depth_histogram` — the in-core search cost profile.
"""

from __future__ import annotations

from collections import Counter

from ..core.cells import edge_target, is_edge
from ..core.trie import Trie

__all__ = [
    "bucket_load_histogram",
    "boundary_length_histogram",
    "leaf_depth_histogram",
    "summarize",
]


def bucket_load_histogram(file) -> dict[int, int]:
    """``records per bucket -> bucket count`` for a TH/MLTH file."""
    counts: Counter = Counter()
    for address in file.store.live_addresses():
        counts[len(file.store.peek(address))] += 1
    return dict(sorted(counts.items()))


def boundary_length_histogram(trie: Trie) -> dict[int, int]:
    """``boundary length (digits) -> count`` over the trie's cut points.

    Each boundary was once a split string (or a prefix the chain had to
    fill in), so this is the distribution that Section 4.5 reasons with:
    compact loads push it right, tuned d-values pull it left.
    """
    counts: Counter = Counter()
    for boundary in trie.boundaries():
        counts[len(boundary)] += 1
    return dict(sorted(counts.items()))


def leaf_depth_histogram(trie: Trie) -> dict[int, int]:
    """``depth (nodes on the path) -> leaf count``."""
    counts: Counter = Counter()
    stack = [(trie.root, 0)]
    while stack:
        ptr, depth = stack.pop()
        if is_edge(ptr):
            cell = trie.cells[edge_target(ptr)]
            stack.append((cell.lp, depth + 1))
            stack.append((cell.rp, depth + 1))
        else:
            counts[depth] += 1
    return dict(sorted(counts.items()))


def summarize(histogram: dict[int, int]) -> dict[str, float]:
    """Mean / min / max / total of an integer histogram."""
    if not histogram:
        return {"mean": 0.0, "min": 0, "max": 0, "total": 0}
    total = sum(histogram.values())
    mean = sum(value * count for value, count in histogram.items()) / total
    return {
        "mean": round(mean, 3),
        "min": min(histogram),
        "max": max(histogram),
        "total": total,
    }
