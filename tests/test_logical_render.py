"""Tests for the logical (M-ary) structure and ASCII rendering."""

from repro import THFile
from repro.core.logical import logical_structure
from repro.core.render import render_file, render_logical, render_trie


class TestLogicalStructure:
    def test_fig2_levels(self, fig1_file):
        structure = logical_structure(fig1_file.trie)
        levels = structure.levels()
        # Fig 2: level-0 digits of the example trie.
        assert levels[0] == ["a", "b", "f", "h", "i", "o", "t"]
        # Level 1: 'r' under 'a', 'e' under 'h', ' ' under 'i'.
        assert sorted(levels[1]) == [" ", "e", "r"]
        assert 2 not in levels

    def test_node_count_matches_binary_trie(self, fig1_file):
        structure = logical_structure(fig1_file.trie)
        assert structure.node_count() == fig1_file.trie.node_count

    def test_parent_child_paths(self, fig1_file):
        structure = logical_structure(fig1_file.trie)
        for root in structure.roots:
            for node in root.walk():
                for child in node.children:
                    assert child.path[:-1] == node.path
                    assert child.level == node.level + 1

    def test_buckets_in_order_match_leaves(self, fig1_file):
        structure = logical_structure(fig1_file.trie)
        from repro.core.cells import is_nil

        expected = [
            (None if is_nil(p) else p)
            for _, p, _ in fig1_file.trie.leaves_in_order()
        ]
        assert structure.buckets_in_order() == expected

    def test_random_file_consistency(self, generator):
        keys = generator.uniform(300)
        f = THFile(bucket_capacity=5)
        for k in keys:
            f.insert(k)
        structure = logical_structure(f.trie)
        assert structure.node_count() == f.trie.node_count
        assert len(structure.buckets_in_order()) == f.trie.node_count + 1

    def test_empty_trie(self):
        f = THFile()
        structure = logical_structure(f.trie)
        assert structure.roots == []
        assert structure.buckets_in_order() == [0]


class TestRendering:
    def test_render_trie_mentions_every_node(self, fig1_file):
        art = render_trie(fig1_file.trie)
        for dv, dn in [("o", 0), ("i", 0), ("h", 0), ("e", 1)]:
            assert f"({dv},{dn})" in art
        for address in range(11):
            assert f"[{address}]" in art

    def test_render_trie_leaf_only(self):
        f = THFile()
        assert render_trie(f.trie) == "[0]"

    def test_render_logical(self, fig1_file):
        art = render_logical(fig1_file.trie)
        assert "level 0: a b f h i o t" in art
        assert art.splitlines()[-1].startswith("leaves")

    def test_render_file(self, fig1_file):
        art = render_file(fig1_file)
        assert "records=31" in art
        assert "for from" in art
        assert "(o,0)" in art

    def test_render_with_nils(self):
        from repro import SplitPolicy

        f = THFile(bucket_capacity=4, policy=SplitPolicy(split_position=-1))
        for k in ("oaaa", "obbb", "osza", "oszc", "oszh"):
            f.insert(k)
        assert "[nil]" in render_trie(f.trie)
        assert "nil" in render_logical(f.trie)
