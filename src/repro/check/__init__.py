"""Unified invariant auditing (``repro.check``).

Every structure in the reproduction grew its own ``check()`` method —
trie, TH/THCL file, MLTH hierarchy, client trie image, overflow file,
boundary model, B+-tree, durable session — each raising an ad-hoc mix
of :class:`AssertionError` and typed corruption errors. This package
puts them behind one front door:

* :func:`audit` — run the registered audit for any object and get a
  machine-readable :class:`AuditReport` (violations carry a
  :class:`Severity` and a stable code) instead of a raised exception.
* :class:`AuditLevel` — how hard to look: ``BASIC`` (cheap shape
  checks), ``FULL`` (the structure's complete invariant sweep),
  ``PARANOID`` (full sweep plus redundant cross-verification).
* Paranoid mode — with ``REPRO_PARANOID=1`` in the environment (or
  :func:`set_paranoid`), :func:`maybe_audit` runs a paranoid audit at
  the call site and raises :class:`ParanoidAuditError` on any finding.
  The chaos harness and the stateful test machines call it after every
  mutating operation, so a corrupting bug is caught at the op that
  introduced it, not at the end-of-run convergence check.

Register audits for new structures with :func:`register_audit`; see
``docs/STATIC_ANALYSIS.md`` for the severity contract.
"""

from __future__ import annotations

from .framework import (
    AuditLevel,
    AuditReport,
    ParanoidAuditError,
    Severity,
    Violation,
    audit,
    find_audit,
    maybe_audit,
    paranoid_enabled,
    register_audit,
    registered_audits,
    set_paranoid,
)
from .audits import audit_manifest
from . import audits  # noqa: F401  -- importing registers the audits

__all__ = [
    "AuditLevel",
    "AuditReport",
    "ParanoidAuditError",
    "Severity",
    "Violation",
    "audit",
    "audit_manifest",
    "find_audit",
    "maybe_audit",
    "paranoid_enabled",
    "register_audit",
    "registered_audits",
    "set_paranoid",
]
