"""B+-tree baseline tests."""

import random

import pytest

from repro import BPlusTree, CapacityError, DuplicateKeyError, KeyNotFoundError


class TestCRUD:
    def test_insert_get(self):
        t = BPlusTree(leaf_capacity=4)
        t.insert("b", 2)
        t.insert("a", 1)
        assert t.get("a") == 1
        assert t.get("b") == 2
        assert len(t) == 2

    def test_missing_key(self):
        t = BPlusTree()
        with pytest.raises(KeyNotFoundError):
            t.get("nope")

    def test_duplicate_rejected(self):
        t = BPlusTree()
        t.insert("a")
        with pytest.raises(DuplicateKeyError):
            t.insert("a")

    def test_put_overwrites(self):
        t = BPlusTree()
        t.put("a", 1)
        t.put("a", 2)
        assert t.get("a") == 2
        assert len(t) == 1

    def test_contains(self):
        t = BPlusTree()
        t.insert("x")
        assert "x" in t and "y" not in t

    def test_delete(self):
        t = BPlusTree()
        t.insert("a", 9)
        assert t.delete("a") == 9
        assert "a" not in t
        with pytest.raises(KeyNotFoundError):
            t.delete("a")

    def test_capacity_validation(self):
        with pytest.raises(CapacityError):
            BPlusTree(leaf_capacity=1)
        with pytest.raises(CapacityError):
            BPlusTree(split_fraction=0.0)
        with pytest.raises(CapacityError):
            BPlusTree(split_fraction=1.5)


class TestBulkBehaviour:
    def test_large_random_workload(self, generator):
        keys = generator.uniform(800)
        t = BPlusTree(leaf_capacity=6)
        for i, k in enumerate(keys):
            t.insert(k, i)
            if i % 100 == 0:
                t.check()
        t.check()
        assert list(t.keys()) == sorted(keys)
        for i, k in enumerate(keys):
            assert t.get(k) == i

    def test_height_logarithmic(self, generator):
        keys = generator.uniform(1000)
        t = BPlusTree(leaf_capacity=8)
        for k in keys:
            t.insert(k)
        assert t.height <= 5

    def test_ascending_load_factor_half(self, sorted_keys):
        t = BPlusTree(leaf_capacity=10)
        for k in sorted_keys:
            t.insert(k)
        assert t.load_factor() == pytest.approx(0.5, abs=0.05)

    def test_split_fraction_controls_load(self, sorted_keys):
        # /ROS81/: the load of an ordered load is linear in the split
        # fraction.
        for fraction in (0.5, 0.7, 1.0):
            t = BPlusTree(leaf_capacity=10, split_fraction=fraction)
            for k in sorted_keys:
                t.insert(k)
            assert t.load_factor() == pytest.approx(fraction, abs=0.06)

    def test_random_load_seventy(self, small_keys):
        t = BPlusTree(leaf_capacity=10)
        for k in small_keys:
            t.insert(k)
        assert 0.6 <= t.load_factor() <= 0.8

    def test_redistribution_raises_load(self, small_keys):
        plain = BPlusTree(leaf_capacity=10)
        redis = BPlusTree(leaf_capacity=10, redistribute=True)
        for k in small_keys:
            plain.insert(k)
            redis.insert(k)
        redis.check()
        assert redis.load_factor() > plain.load_factor()
        assert redis.redistributions > 0


class TestDeletions:
    def test_floor_after_heavy_deletes(self, generator):
        keys = generator.uniform(600)
        t = BPlusTree(leaf_capacity=8)
        for k in keys:
            t.insert(k)
        victims = list(keys)
        random.Random(5).shuffle(victims)
        for i, k in enumerate(victims[:500]):
            t.delete(k)
            if i % 50 == 0:
                t.check()
        t.check()
        from repro.btree.node import LeafNode

        sizes = [
            len(n) for _, n in t._walk_nodes() if isinstance(n, LeafNode)
        ]
        if len(sizes) > 1:
            assert min(sizes) >= 8 // 2

    def test_tree_shrinks_height(self, generator):
        keys = generator.uniform(600)
        t = BPlusTree(leaf_capacity=4)
        for k in keys:
            t.insert(k)
        high = t.height
        for k in keys[:590]:
            t.delete(k)
        t.check()
        assert t.height < high

    def test_delete_everything_then_reuse(self, generator):
        keys = generator.uniform(200)
        t = BPlusTree(leaf_capacity=4)
        for k in keys:
            t.insert(k)
        for k in keys:
            t.delete(k)
        assert len(t) == 0
        t.insert("again")
        assert "again" in t
        t.check()


class TestRangeScans:
    def test_full_scan(self, small_keys):
        t = BPlusTree(leaf_capacity=6)
        for k in small_keys:
            t.insert(k)
        assert [k for k, _ in t.range_items()] == sorted(small_keys)

    def test_bounded_scan(self, small_keys):
        t = BPlusTree(leaf_capacity=6)
        for k in small_keys:
            t.insert(k)
        s = sorted(small_keys)
        assert [k for k, _ in t.range_items(s[10], s[90])] == s[10:91]


class TestAccessCounting:
    def test_search_reads_height_nodes(self, generator):
        keys = generator.uniform(500)
        t = BPlusTree(leaf_capacity=6, pin_root=False)
        for k in keys:
            t.insert(k)
        reads_before = t.disk.stats.reads
        t.get(keys[0])
        assert t.disk.stats.reads - reads_before == t.height

    def test_pinned_root_saves_one(self, generator):
        keys = generator.uniform(500)
        t = BPlusTree(leaf_capacity=6, pin_root=True)
        for k in keys:
            t.insert(k)
        reads_before = t.disk.stats.reads
        t.get(keys[0])
        assert t.disk.stats.reads - reads_before == t.height - 1

    def test_index_bytes_accounting(self, generator):
        from repro.storage.layout import Layout

        keys = generator.uniform(300)
        layout = Layout(key_bytes=20, pointer_bytes=4)
        t = BPlusTree(leaf_capacity=6, layout=layout)
        for k in keys:
            t.insert(k)
        assert t.index_bytes() == 24 * t.separator_count()
