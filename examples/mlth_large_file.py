#!/usr/bin/env python
"""Multilevel trie hashing: two disk accesses for a big file.

Section 2.5 / 3.1: when the trie outgrows core, it is paged to disk as a
two-level hierarchy; with the root page pinned, any key search costs two
accesses (one trie page + one bucket). This example grows an MLTH file
until it has three page levels, then measures search costs and converts
them to simulated milliseconds with the vintage-1981 latency model.

Run:  python examples/mlth_large_file.py
"""

from repro import MLTHFile
from repro.storage.latency import LatencyModel
from repro.workloads import KeyGenerator


def main() -> None:
    keys = KeyGenerator(1981).uniform(20000, length=7)
    f = MLTHFile(bucket_capacity=20, page_capacity=64, pin_root=True)

    checkpoints = (1000, 5000, 20000)
    for i, key in enumerate(keys, start=1):
        f.insert(key)
        if i in checkpoints:
            pages, buckets = f.search_cost(keys[i // 2])
            print(
                f"{i:6d} records: levels={f.levels()} pages={f.page_count():3d} "
                f"page-load={f.page_load_factor():.1%} "
                f"bucket-load={f.load_factor():.1%} "
                f"search = {pages} page + {buckets} bucket reads"
            )

    # --- Average search cost over a probe set --------------------------
    probes = keys[::200]
    total_pages = total_buckets = 0
    for key in probes:
        pages, buckets = f.search_cost(key)
        total_pages += pages
        total_buckets += buckets
    mean_accesses = (total_pages + total_buckets) / len(probes)
    print(f"\nmean accesses/search over {len(probes)} probes: {mean_accesses:.2f}")

    # --- Convert to simulated time -------------------------------------
    vintage = LatencyModel.vintage_1981()
    modern = LatencyModel.hdd_7200rpm()
    for name, model in (("1981 winchester", vintage), ("7200rpm HDD", modern)):
        ms = mean_accesses * model.access_seconds(4096) * 1000
        print(f"  {name:16s}: ~{ms:.1f} ms per key search")

    # --- Range scan across page borders --------------------------------
    s = sorted(keys)
    lo, hi = s[5000], s[5200]
    hits = sum(1 for _ in f.range_items(lo, hi))
    print(f"\nrange [{lo}, {hi}]: {hits} records, order preserved across pages")

    # The trie would have needed this much core memory if kept flat:
    print(
        f"\nflat trie would hold {f.trie_size()} cells "
        f"(~{6 * f.trie_size() / 1024:.1f} KiB); paged, only the "
        f"root page (<= {f.page_capacity} cells) stays in core"
    )


if __name__ == "__main__":
    main()
