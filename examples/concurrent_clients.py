#!/usr/bin/env python
"""Concurrency: why trie hashing out-concurs a B-tree (/VID87/).

Replays the same mixed workload (searches + inserts) through the two
locking protocols — TH locks only the target bucket plus the allocation
counter N on splits; the B-tree lock-couples down from the root — and
simulates 1..16 concurrent clients.

Run:  python examples/concurrent_clients.py
"""

from repro import BPlusTree, THFile
from repro.concurrency import (
    btree_operation_schedule,
    simulate_clients,
    th_operation_schedule,
)
from repro.workloads import KeyGenerator


def schedules(method: str, present, fresh):
    out = []
    if method == "TH":
        f = THFile(bucket_capacity=10)
        for k in present:
            f.insert(k)
        make = lambda op, k: th_operation_schedule(f, op, k)  # noqa: E731
    else:
        t = BPlusTree(leaf_capacity=10)
        for k in present:
            t.insert(k)
        make = lambda op, k: btree_operation_schedule(t, op, k)  # noqa: E731
    for i, key in enumerate(fresh):
        out.append(make("insert", key))
        out.append(make("search", present[i % len(present)]))
    return out


def main() -> None:
    gen = KeyGenerator(1987)
    present = gen.uniform(2000)
    fresh = gen.uniform(500, salt=9)

    print(f"{'method':8s} {'clients':>7s} {'conflicts':>9s} "
          f"{'wait':>7s} {'makespan':>8s} {'speedup':>8s}")
    for method in ("TH", "B+-tree"):
        ops = schedules(method, present, fresh)
        baseline = None
        for clients in (1, 2, 4, 8, 16):
            report = simulate_clients(ops, clients)
            if baseline is None:
                baseline = report.makespan
            print(
                f"{method:8s} {clients:7d} {report.conflicts:9d} "
                f"{report.wait_ticks:7d} {report.makespan:8d} "
                f"{baseline / report.makespan:7.1f}x"
            )
    print(
        "\nTH's one-bucket-plus-N locking keeps conflicts near zero, so "
        "extra clients convert almost\nlinearly into throughput; the "
        "B-tree's root coupling throttles its scaling (/VID87/, Sec 6)."
    )


if __name__ == "__main__":
    main()
