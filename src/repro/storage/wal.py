"""Write-ahead logging over simulated stable storage.

The simulated disks of :mod:`repro.storage.disk` are *volatile*: they
model access counts, not survival. This module adds the missing
durability substrate in two layers:

* :class:`StableStore` — a named-object non-volatile byte store with the
  crash semantics of a POSIX filesystem: ``append`` buffers bytes that
  become durable only at ``fsync``; ``write_atomic`` models the
  temp-file + rename idiom (all-or-nothing replacement); a crash throws
  away every un-fsynced byte, except possibly a *torn* prefix of the
  unflushed tail (a partially written last block).

* The WAL itself — a stream of checksummed, LSN-stamped records.
  Operation records (``insert``/``put``/``delete``) are the REDO unit:
  a record is appended after the in-memory apply succeeds and the
  operation is acknowledged only once the record is fsynced. Structural
  detail records (bucket create/write/free, trie-node edits, merges,
  redistributions, page splits) are interleaved by the storage and core
  layers through the same :class:`WALWriter`; recovery does not replay
  them — re-executing the deterministic operation records rebuilds the
  identical structure — but they make the log a faithful, inspectable
  account of every structure modification and drive the incremental
  checkpointer's dirty-bucket tracking.

Record wire format (see ``docs/DURABILITY.md``)::

    magic(2) | lsn(8) | type(1) | len(4) | payload(len) | crc32(4)

The CRC covers lsn, type, length and payload. A reader stops cleanly at
the first record whose magic, length or CRC does not check out — the
torn tail a crash may leave behind.
"""

from __future__ import annotations

import json
import struct
import zlib
from collections.abc import Iterator
from typing import Optional

from ..core.errors import StorageError
from ..obs.tracer import TRACER

__all__ = [
    "StableStore",
    "StableStats",
    "WALRecord",
    "WALWriter",
    "read_records",
    "stream_ops",
    "OP_TYPES",
    "REC_INSERT",
    "REC_PUT",
    "REC_DELETE",
    "REC_BUCKET_CREATE",
    "REC_BUCKET_WRITE",
    "REC_BUCKET_FREE",
    "REC_TRIE_EXPAND",
    "REC_BOUNDARY_INSERT",
    "REC_MERGE",
    "REC_BORROW",
    "REC_REDISTRIBUTE",
    "REC_PAGE_EDIT",
    "REC_PAGE_SPLIT",
    "REC_NODE_SPLIT",
]

# ----------------------------------------------------------------------
# Record types
# ----------------------------------------------------------------------
#: Operation records — the REDO unit replayed by recovery.
REC_INSERT = 1
REC_PUT = 2
REC_DELETE = 3

#: Structural detail records — logged for inspection and dirty tracking.
REC_BUCKET_CREATE = 16
REC_BUCKET_WRITE = 17
REC_BUCKET_FREE = 18
REC_TRIE_EXPAND = 19
REC_BOUNDARY_INSERT = 20
REC_MERGE = 21
REC_BORROW = 22
REC_REDISTRIBUTE = 23
REC_PAGE_EDIT = 24
REC_PAGE_SPLIT = 25
REC_NODE_SPLIT = 26

OP_TYPES = frozenset((REC_INSERT, REC_PUT, REC_DELETE))

_REC_MAGIC = b"\xd7\x1e"  # two fixed marker bytes
_HEADER = struct.Struct(">QBI")  # lsn, type, payload length


# ----------------------------------------------------------------------
# Stable storage
# ----------------------------------------------------------------------
class StableStats:
    """Physical-write counters for one stable store."""

    __slots__ = ("appends", "fsyncs", "renames", "unlinks", "bytes_appended")

    def __init__(self) -> None:
        self.appends = 0
        self.fsyncs = 0
        self.renames = 0
        self.unlinks = 0
        self.bytes_appended = 0

    @property
    def write_ops(self) -> int:
        """Total physical write operations (the crash-point counter)."""
        return self.appends + self.fsyncs + self.renames + self.unlinks

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StableStats(appends={self.appends}, fsyncs={self.fsyncs}, "
            f"renames={self.renames}, unlinks={self.unlinks})"
        )


class _StableObject:
    """One named object: a byte run with a durable prefix."""

    __slots__ = ("data", "durable")

    def __init__(self, data: bytes = b"", durable: Optional[int] = None):
        self.data = bytearray(data)
        self.durable = len(data) if durable is None else durable


class StableStore:
    """Simulated non-volatile storage with filesystem crash semantics.

    Objects are named byte runs. ``append`` extends an object in the
    (volatile) page cache; ``fsync`` makes everything appended so far
    durable; ``write_atomic`` replaces an object all-or-nothing (the
    temp-file + rename protocol — the temp file itself is invisible to
    readers and to crashes). :meth:`lose_volatile` applies a crash: every
    object keeps only its durable prefix, except that the caller may ask
    for ``tear`` extra bytes of one object's unflushed tail to survive
    (a torn last block).

    Subclasses hook :meth:`_physical` (called *before* an operation takes
    effect) to count, record or crash on physical writes.
    """

    def __init__(self) -> None:
        self._objects: dict[str, _StableObject] = {}
        self.stats = StableStats()

    # -- hook ----------------------------------------------------------
    def _physical(self, kind: str, name: str, payload: bytes = b"") -> None:
        """Called before each physical write op (append/fsync/rename/unlink)."""

    # -- write path ----------------------------------------------------
    def append(self, name: str, data: bytes) -> None:
        """Append bytes to ``name`` (created empty if missing); volatile."""
        self._physical("append", name, bytes(data))
        self.stats.appends += 1
        self.stats.bytes_appended += len(data)
        obj = self._objects.get(name)
        if obj is None:
            obj = self._objects[name] = _StableObject(b"", durable=0)
        obj.data += data

    def fsync(self, name: str) -> None:
        """Make every appended byte of ``name`` durable."""
        self._physical("fsync", name)
        self.stats.fsyncs += 1
        obj = self._objects.get(name)
        if obj is None:
            raise StorageError(f"stable object {name!r} does not exist")
        obj.durable = len(obj.data)

    def write_atomic(self, name: str, data: bytes) -> None:
        """Replace ``name`` with ``data`` all-or-nothing (temp + rename)."""
        self._physical("rename", name, bytes(data))
        self.stats.renames += 1
        self._objects[name] = _StableObject(bytes(data))

    def delete(self, name: str) -> None:
        """Unlink ``name`` (durable immediately; missing names are fine)."""
        self._physical("unlink", name)
        self.stats.unlinks += 1
        self._objects.pop(name, None)

    # -- read path -----------------------------------------------------
    def exists(self, name: str) -> bool:
        """True when ``name`` exists (durable or not)."""
        return name in self._objects

    def read(self, name: str) -> bytes:
        """Current contents of ``name`` (including unflushed appends)."""
        obj = self._objects.get(name)
        if obj is None:
            raise StorageError(f"stable object {name!r} does not exist")
        return bytes(obj.data)

    def names(self) -> list[str]:
        """All object names, sorted."""
        return sorted(self._objects)

    def size(self, name: str) -> int:
        """Current length of ``name`` in bytes."""
        return len(self.read(name))

    # -- crash semantics ----------------------------------------------
    def lose_volatile(self, torn: Optional[tuple[str, int]] = None) -> None:
        """Apply a crash: truncate every object to its durable prefix.

        ``torn=(name, extra)`` lets ``extra`` bytes of one object's
        unflushed tail survive — the partially written last block of a
        torn write.
        """
        for name, obj in list(self._objects.items()):
            keep = obj.durable
            if torn is not None and torn[0] == name:
                keep = min(len(obj.data), obj.durable + max(0, torn[1]))
            del obj.data[keep:]
            obj.durable = len(obj.data)

    def snapshot_durable(self) -> dict[str, bytes]:
        """The durable image: what a crash right now would preserve."""
        return {
            name: bytes(obj.data[: obj.durable])
            for name, obj in self._objects.items()
        }

    @classmethod
    def from_snapshot(cls, image: dict[str, bytes]) -> StableStore:
        """A fresh store holding ``image`` (all of it durable)."""
        store = cls()
        for name, data in image.items():
            store._objects[name] = _StableObject(data)
        return store


# ----------------------------------------------------------------------
# Record codec
# ----------------------------------------------------------------------
class WALRecord:
    """One decoded log record."""

    __slots__ = ("lsn", "type", "payload")

    def __init__(self, lsn: int, rec_type: int, payload: dict):
        self.lsn = lsn
        self.type = rec_type
        self.payload = payload

    @property
    def is_op(self) -> bool:
        """True for operation (REDO) records."""
        return self.type in OP_TYPES

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WALRecord(lsn={self.lsn}, type={self.type}, {self.payload!r})"


def encode_record(lsn: int, rec_type: int, payload: dict) -> bytes:
    """Encode one record (magic, header, payload, CRC trailer)."""
    body = json.dumps(payload, separators=(",", ":")).encode()
    header = _HEADER.pack(lsn, rec_type, len(body))
    crc = zlib.crc32(header + body) & 0xFFFFFFFF
    return _REC_MAGIC + header + body + struct.pack(">I", crc)


def read_records(data: bytes) -> tuple[list[WALRecord], bool]:
    """Decode a log image; stop cleanly at a torn or corrupt tail.

    Returns ``(records, clean)`` where ``clean`` is False when trailing
    bytes had to be discarded (torn last record or trailing garbage).
    """
    records: list[WALRecord] = []
    offset = 0
    header_size = len(_REC_MAGIC) + _HEADER.size
    while offset < len(data):
        if (
            offset + header_size > len(data)
            or data[offset : offset + len(_REC_MAGIC)] != _REC_MAGIC
        ):
            return records, False
        lsn, rec_type, length = _HEADER.unpack_from(data, offset + len(_REC_MAGIC))
        body_at = offset + header_size
        crc_at = body_at + length
        if crc_at + 4 > len(data):
            return records, False
        expected = zlib.crc32(data[offset + len(_REC_MAGIC) : crc_at]) & 0xFFFFFFFF
        (stored,) = struct.unpack_from(">I", data, crc_at)
        if stored != expected:
            return records, False
        try:
            payload = json.loads(data[body_at:crc_at].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return records, False
        records.append(WALRecord(lsn, rec_type, payload))
        offset = crc_at + 4
    return records, True


def stream_ops(
    store: StableStore, name: str, after_lsn: int = 0
) -> Iterator[WALRecord]:
    """Operation records in segment ``name`` with ``lsn > after_lsn``.

    The catch-up primitive of replication: a backup that fell behind but
    still overlaps the primary's current segment (its last applied LSN is
    at or past the segment's truncation point) is repaired by streaming
    the records it missed, in LSN order. Reads the segment image as-is
    and stops at a torn tail, so callers should invoke it at a commit
    boundary.
    """
    if not store.exists(name):
        return
    records, _clean = read_records(store.read(name))
    for record in records:
        if record.is_op and record.lsn > after_lsn:
            yield record


# ----------------------------------------------------------------------
# Writer / journal
# ----------------------------------------------------------------------
class WALWriter:
    """Appends records to one log segment on a :class:`StableStore`.

    Doubles as the *journal* the storage and core layers thread their
    structural detail records through: :class:`~repro.storage.buckets.
    BucketStore` and the split/merge/redistribution/page modules call the
    ``log_*`` helpers when a journal is attached. Bucket-touching records
    feed :attr:`dirty_buckets`, which the incremental checkpointer
    drains.
    """

    def __init__(self, store: StableStore, name: str, next_lsn: int = 1):
        self.store = store
        self.name = name
        self.next_lsn = next_lsn
        #: Bucket addresses touched since the last checkpoint drain.
        self.dirty_buckets = set()
        #: Addresses freed since the last checkpoint drain.
        self.freed_buckets = set()
        #: Recovery replay mode: the re-executed operations must update
        #: the dirty-bucket sets (their mutations belong in the next
        #: incremental checkpoint) without appending duplicate records.
        self.suppress_appends = False
        #: Commit-time subscribers: each callable receives the list of
        #: operation records made durable by one :meth:`commit` — the
        #: shipping unit of primary/backup replication. Replay modes
        #: (``suppress_appends``) never reach the taps, so recovery does
        #: not re-ship.
        self.taps: list = []
        self._pending_ops: list = []

    @property
    def last_lsn(self) -> int:
        """LSN of the most recently appended record (0 when none)."""
        return self.next_lsn - 1

    def append(self, rec_type: int, payload: dict) -> int:
        """Append one record (volatile until :meth:`commit`)."""
        if self.suppress_appends:
            return self.last_lsn
        lsn = self.next_lsn
        self.next_lsn += 1
        encoded = encode_record(lsn, rec_type, payload)
        self.store.append(self.name, encoded)
        if self.taps and rec_type in OP_TYPES:
            self._pending_ops.append(WALRecord(lsn, rec_type, payload))
        if TRACER.enabled:
            TRACER.emit("wal_append", lsn=lsn, type=rec_type, bytes=len(encoded))
        return lsn

    def commit(self) -> None:
        """fsync the segment: everything appended so far is now durable."""
        self.store.fsync(self.name)
        if TRACER.enabled:
            TRACER.emit("wal_fsync", lsn=self.last_lsn)
        if self._pending_ops:
            batch, self._pending_ops = self._pending_ops, []
            for tap in list(self.taps):
                tap(batch)

    # -- journal API (structural detail records) -----------------------
    def log_bucket_create(self, address: int) -> None:
        self.dirty_buckets.add(address)
        self.freed_buckets.discard(address)
        self.append(REC_BUCKET_CREATE, {"a": address})

    def log_bucket_write(self, address: int, records: int) -> None:
        self.dirty_buckets.add(address)
        self.append(REC_BUCKET_WRITE, {"a": address, "n": records})

    def log_bucket_free(self, address: int) -> None:
        self.dirty_buckets.discard(address)
        self.freed_buckets.add(address)
        self.append(REC_BUCKET_FREE, {"a": address})

    def log_trie_expand(self, boundary: str, old: int, new: int, added: int) -> None:
        self.append(
            REC_TRIE_EXPAND, {"b": boundary, "old": old, "new": new, "added": added}
        )

    def log_boundary_insert(
        self, boundary: str, left: int, right: int, added: int, repointed: int
    ) -> None:
        self.append(
            REC_BOUNDARY_INSERT,
            {"b": boundary, "l": left, "r": right, "added": added, "rp": repointed},
        )

    def log_merge(self, kind: str, survivor: int, victim: int) -> None:
        self.append(REC_MERGE, {"kind": kind, "s": survivor, "v": victim})

    def log_borrow(self, cut: str, lower: int, upper: int, moved: int) -> None:
        self.append(REC_BORROW, {"cut": cut, "lo": lower, "hi": upper, "n": moved})

    def log_redistribute(self, direction: str, cut: str, moved: int) -> None:
        self.append(REC_REDISTRIBUTE, {"dir": direction, "cut": cut, "n": moved})

    def log_page_edit(self, gap: int, boundaries: list[str]) -> None:
        self.append(REC_PAGE_EDIT, {"gap": gap, "b": boundaries})

    def log_page_split(
        self, page: int, new_page: int, level: int, separator: str
    ) -> None:
        self.append(
            REC_PAGE_SPLIT,
            {"page": page, "new": new_page, "level": level, "sep": separator},
        )

    def log_node_split(self, kind: str, node: int, new_node: int) -> None:
        self.append(REC_NODE_SPLIT, {"kind": kind, "node": node, "new": new_node})

    def drain_dirty(self) -> tuple[set, set]:
        """Hand the (dirty, freed) sets to a checkpoint and reset them."""
        dirty, freed = self.dirty_buckets, self.freed_buckets
        self.dirty_buckets, self.freed_buckets = set(), set()
        return dirty, freed


def replay_ops(records: Iterator[WALRecord]) -> Iterator[WALRecord]:
    """Filter a record stream down to the operation (REDO) records."""
    for record in records:
        if record.is_op:
            yield record
