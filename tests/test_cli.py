"""CLI entry-point tests."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "31 most-used English words" in out
        assert "buckets=11" in out
        assert "for from" in out

    def test_run_experiment(self, capsys):
        assert main(["run", "sec32-expected", "--count", "300",
                     "--bucket-capacity", "6"]) == 0
        out = capsys.readouterr().out
        assert "a_a% (m=b)" in out

    def test_run_with_seed(self, capsys):
        assert main(["run", "ablation-balance", "--count", "200",
                     "--seed", "5"]) == 0
        assert "balanced depth" in capsys.readouterr().out

    def test_run_rejects_unknown(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "not-an-experiment"])

    def test_no_command_shows_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out

    def test_bucket_capacities_plural_mapping(self, capsys):
        # Experiments taking bucket_capacities receive a 1-tuple.
        assert main(["run", "sec31", "--count", "300",
                     "--bucket-capacity", "8"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") >= 4

    def test_every_experiment_runs_small(self, capsys):
        # Smoke: each registered experiment completes at minimal size.
        small = {
            "fig10": ["--count", "200"],
            "fig11": ["--count", "200"],
            "sec31": ["--count", "200"],
            "sec32-unexpected": ["--count", "200"],
            "sec32-expected": ["--count", "200"],
            "sec45": ["--count", "200"],
            "sec45-redistribution": ["--count", "200"],
            "growth": ["--count", "200"],
            "sec5": ["--count", "200"],
            "mlth": [],
            "deletions": ["--count", "200"],
            "ablation-nil": ["--count", "200"],
            "ablation-balance": ["--count", "200"],
            "ablation-buffer": ["--count", "200"],
            "ablation-overflow": ["--count", "200"],
            "capacity": [],
            "concurrency": ["--count", "300"],
            "multikey": ["--count", "300"],
        }
        for name, args in small.items():
            assert main(["run", name, "--bucket-capacity", "8"] + args) == 0, name
