"""Sections 2.5 / 3.1-3.2: multilevel trie hashing.

As the file grows, the paged trie adds levels; with the root page in
core, two page levels (the practical ceiling the paper derives for
gigabyte files) mean two page reads plus one bucket read per search.
Includes the Fig 4 page-split scenario and the ordered-insertion
split-node shift (page loads up to the 70-87% band).
"""

from conftest import once

from repro import MLTHFile, SplitPolicy
from repro.analysis import mlth_access_table
from repro.workloads import KeyGenerator


def test_mlth_access(benchmark, report):
    rows = once(
        benchmark,
        lambda: mlth_access_table(
            counts=(500, 2000, 8000), bucket_capacity=10, page_capacity=32
        ),
    )
    report(
        "mlth_access",
        rows,
        "MLTH - levels, page loads and per-search accesses vs file size",
    )
    assert rows[-1]["levels"] >= 3
    assert rows[-1]["bucket_reads/search"] == 1
    assert rows[-1]["page_reads/search"] == rows[-1]["levels"] - 1
    for r in rows:
        assert 40 <= r["page_load%"] <= 100


def test_mlth_split_node_shift(benchmark, report):
    """Section 3.2's refinement: shift the split node for ordered loads."""

    def run():
        keys = KeyGenerator(42).sorted_keys(5000)
        rows = []
        for pick in ("balanced", "first", "last"):
            f = MLTHFile(
                bucket_capacity=10,
                page_capacity=32,
                policy=SplitPolicy(
                    nil_nodes=False, bounding_offset=None, merge="none"
                ),
                split_node_pick=pick,
            )
            for k in keys:
                f.insert(k)
            rows.append(
                {
                    "split node": pick,
                    "page_load%": round(100 * f.page_load_factor(), 1),
                    "pages": f.page_count(),
                    "bucket_a%": round(100 * f.load_factor(), 1),
                }
            )
        return rows

    rows = once(benchmark, run)
    report(
        "mlth_split_shift",
        rows,
        "MLTH - split-node shift for ascending insertions (Section 3.2)",
    )
    # The paper reports 70-87% page loads for tuned split nodes. Our
    # rebuild-based pages reach that band already at the balanced pick
    # (ascending THCL boundaries interleave extensions below their
    # prefixes, so the best direction is workload-dependent): assert the
    # band, not a fixed direction - see EXPERIMENTS.md.
    assert max(r["page_load%"] for r in rows) >= 70
    for r in rows:
        assert 30 <= r["page_load%"] <= 100
