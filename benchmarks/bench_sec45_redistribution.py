"""Section 4.5: redistribution.

B-tree-style redistribution applied to THCL lifts the random load toward
the ~87% peak and pushes unexpected ordered loads to ~100%, at the price
of neighbour probes during splits and a larger trie.
"""

from conftest import once

from repro.analysis import sec45_redistribution


def test_sec45_redistribution(benchmark, report):
    rows = once(
        benchmark,
        lambda: sec45_redistribution(count=5000, bucket_capacity=20),
    )
    report(
        "sec45_redistribution",
        rows,
        "Section 4.5 - redistribution: loads vs plain THCL (b = 20)",
    )
    by = {(r["order"], r["policy"]): r for r in rows}
    plain = by[("random", "plain THCL")]["a%"]
    redis = by[("random", "with redistribution")]["a%"]
    assert redis > plain
    assert redis >= 80                      # toward the 87% peak
    assert by[("unexpected ascending", "with redistribution")]["a%"] >= 95
    for r in rows:
        if r["policy"] != "plain THCL":
            assert r["redistributions"] > 0
