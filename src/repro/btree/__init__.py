"""B+-tree baseline.

Every comparison in the paper (Section 5, and the load-factor discussions
of Sections 3–4) is drawn against "the ubiquitous B-tree" — concretely
its most used implementation, the B+-tree. This package implements that
baseline over the same simulated-disk substrate as the trie-hashing
files, with the features the paper invokes:

* configurable leaf split point (the /ROS81/ linear load control: the
  split fraction directly sets the load factor of ordered loads, up to
  the 100%-compact B-tree);
* optional redistribution before splitting (the ~87% random load);
* deletions with borrow/merge guaranteeing the 50% floor;
* branch-space accounting (key + pointer bytes per separator) for the
  index-size comparison against six-byte trie cells.
"""

from .btree import BPlusTree
from .compact import bulk_load_compact

__all__ = ["BPlusTree", "bulk_load_compact"]
