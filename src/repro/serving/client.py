"""Clients for the asyncio serving tier.

Three layers, innermost first:

* :class:`AsyncClient` — one connection, pure asyncio. Requests are
  **pipelined**: each send is stamped with a correlation id and awaited
  on a future; a single reader task matches response frames back to
  their futures, so any number of requests can be in flight at once.
  Per-op deadlines are real ``asyncio.wait_for`` timeouts surfacing as
  :class:`~repro.distributed.errors.OpTimeoutError` — the retryable
  ambiguity (the server may or may not have executed the op) that
  request-id dedup exists to absorb.
* :class:`LoopRunner` — a dedicated event-loop thread, so synchronous
  code can drive the async client with plain blocking calls.
* :class:`RemoteTransport` + :class:`RemoteCluster` — the synchronous
  :class:`~repro.distributed.transport.Transport` facade. It quacks
  exactly enough like a :class:`~repro.distributed.coordinator.Cluster`
  that an unmodified :class:`~repro.distributed.client.DistributedFile`
  — image routing, IAM patching, retry loop, rid minting and all —
  runs over a real socket. :func:`connect` bundles the stack into one
  context-managed session.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import struct
import threading
import time
from typing import Any, Optional

from ..core.alphabet import Alphabet
from ..distributed.client import DistributedFile
from ..distributed.codec import (
    FRAME_CONTROL,
    FRAME_CONTROL_REPLY,
    FRAME_REQUEST,
    FRAME_RESPONSE,
    decode_reply,
    decode_value,
    encode_op,
    encode_value,
    pack_frame,
)
from ..distributed.errors import (
    MessageLostError,
    OpTimeoutError,
    ProtocolError,
)
from ..distributed.faults import RetryPolicy
from ..distributed.messages import Op, Reply
from ..obs.metrics import MetricsRegistry
from .frames import DEFAULT_MAX_FRAME, read_frame

__all__ = [
    "AsyncClient",
    "LoopRunner",
    "RemoteTransport",
    "RemoteCluster",
    "RemoteSession",
    "connect",
]

_U32 = struct.Struct(">I")

#: Wall-clock backstop for any single roundtrip a sync facade makes.
#: Orders of magnitude above any sane op; it exists so a hung server
#: cannot hang the calling thread forever, not as a tuning knob.
DEFAULT_WALL_TIMEOUT = 30.0


class AsyncClient:
    """One pipelined connection to a :class:`~repro.serving.server.ServingServer`."""

    def __init__(self, reader, writer, max_frame: int = DEFAULT_MAX_FRAME):
        self._reader = reader
        self._writer = writer
        self._max_frame = max_frame
        self._pending: dict[int, asyncio.Future] = {}
        self._next_corr = 0
        self._closed = False
        self._reader_task = asyncio.ensure_future(self._read_loop())

    # ------------------------------------------------------------------
    @classmethod
    async def open_unix(cls, path: str, **kwargs) -> "AsyncClient":
        reader, writer = await asyncio.open_unix_connection(path)
        return cls(reader, writer, **kwargs)

    @classmethod
    async def open_tcp(cls, host: str, port: int, **kwargs) -> "AsyncClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, **kwargs)

    async def close(self) -> None:
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._fail_pending(MessageLostError("connection closed"))
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    # ------------------------------------------------------------------
    async def _read_loop(self) -> None:
        try:
            while True:
                kind, corr_id, payload = await read_frame(
                    self._reader, self._max_frame
                )
                future = self._pending.pop(corr_id, None)
                # A missing future is a reply that outlived its
                # deadline — the op timed out client-side and the late
                # answer is dropped on the floor, like a real network.
                if future is not None and not future.done():
                    future.set_result((kind, payload))
        except asyncio.CancelledError:
            raise
        except (asyncio.IncompleteReadError, ConnectionError, OSError) as exc:
            self._fail_pending(MessageLostError(f"connection lost: {exc}"))
        except ProtocolError as exc:
            self._fail_pending(exc)

    def _fail_pending(self, exc: BaseException) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(exc)

    async def _roundtrip(
        self, kind: int, payload: bytes, timeout: Optional[float]
    ) -> tuple[int, bytes]:
        if self._closed:
            raise MessageLostError("client is closed")
        corr_id = self._next_corr
        self._next_corr += 1
        future = asyncio.get_running_loop().create_future()
        self._pending[corr_id] = future
        try:
            try:
                self._writer.write(pack_frame(kind, corr_id, payload))
                await self._writer.drain()
            except (ConnectionError, OSError) as exc:
                raise MessageLostError(f"send failed: {exc}") from None
            if timeout is None:
                return await future
            try:
                return await asyncio.wait_for(future, timeout)
            except asyncio.TimeoutError:
                raise OpTimeoutError(
                    f"no reply within the {timeout:.4f}s deadline"
                ) from None
        finally:
            self._pending.pop(corr_id, None)

    # ------------------------------------------------------------------
    async def request(
        self, shard_id: int, op: Op, timeout: Optional[float] = None
    ) -> Reply:
        """Send one op to ``shard_id``; its decoded :class:`Reply`.

        Raises the decoded typed exception if the server's handler
        raised rather than answering (down shard, unknown shard, wire
        damage); raises :class:`OpTimeoutError` past the deadline.
        """
        payload = _U32.pack(shard_id) + encode_op(op)
        kind, body = await self._roundtrip(FRAME_REQUEST, payload, timeout)
        if kind != FRAME_RESPONSE or not body:
            raise ProtocolError(f"unexpected response frame kind {kind}")
        if body[0] == 0:
            return decode_reply(body[1:])
        raised = decode_value(body[1:])
        if not isinstance(raised, BaseException):
            raise ProtocolError("raised outcome did not decode to an error")
        raise raised

    async def control(
        self, command: dict, timeout: Optional[float] = DEFAULT_WALL_TIMEOUT
    ) -> Any:
        """Run one control command; its decoded result value."""
        kind, body = await self._roundtrip(
            FRAME_CONTROL, encode_value(command), timeout
        )
        if kind != FRAME_CONTROL_REPLY or not body:
            raise ProtocolError(f"unexpected control frame kind {kind}")
        result = decode_value(body[1:])
        if body[0] == 0:
            return result
        if not isinstance(result, BaseException):
            raise ProtocolError("control error did not decode to an error")
        raise result


class LoopRunner:
    """A dedicated asyncio loop on a daemon thread, driven synchronously."""

    def __init__(self):
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run, name="th-serving-loop", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_forever()

    def call(self, coro: Any, timeout: Optional[float] = None) -> Any:
        """Run ``coro`` on the loop thread; block for its result."""
        future = asyncio.run_coroutine_threadsafe(coro, self.loop)
        try:
            return future.result(timeout)
        except concurrent.futures.TimeoutError:
            future.cancel()
            raise OpTimeoutError(
                f"loop call exceeded the {timeout}s wall backstop"
            ) from None

    def stop(self) -> None:
        if self.loop.is_closed():
            return
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout=5)
        self.loop.close()


class RemoteTransport:
    """The synchronous :class:`Transport` facade over an :class:`AsyncClient`.

    ``now`` is real monotonic time and ``sleep`` really blocks (this is
    a sync method on the caller's thread, not a coroutine): over a real
    wire, retry backoff and latency measurement are wall-clock facts,
    not simulation state.
    """

    def __init__(
        self,
        runner: LoopRunner,
        conn: AsyncClient,
        registry: Optional[MetricsRegistry] = None,
        wall_timeout: float = DEFAULT_WALL_TIMEOUT,
    ):
        self.runner = runner
        self.conn = conn
        self.registry = registry if registry is not None else MetricsRegistry()
        self.wall_timeout = wall_timeout
        #: Roundtrips completed through this transport (request+reply).
        self.messages = 0

    @property
    def now(self) -> float:
        return time.perf_counter()

    def sleep(self, seconds: float) -> None:
        time.sleep(seconds)

    def note_apply(self, rid: object) -> None:
        """The apply audit lives server-side over a real wire."""

    def duplicate_applies(self) -> int:
        return self.control({"cmd": "duplicate_applies"})

    def control(self, command: dict) -> Any:
        return self.runner.call(
            self.conn.control(command), self.wall_timeout
        )

    def client_send(
        self, shard_id: int, op: Op, timeout: Optional[float] = None
    ) -> Reply:
        # The op deadline rides inside the coroutine (asyncio.wait_for);
        # the runner timeout is only the hung-loop backstop above it.
        wall = self.wall_timeout if timeout is None else timeout + self.wall_timeout
        reply = self.runner.call(
            self.conn.request(shard_id, op, timeout), wall
        )
        self.messages += 2
        return reply


class _RemoteCoordinator:
    """The sliver of coordinator surface a remote client may touch.

    Everything here is metadata (never routed data): the cold-start
    shard and the authoritative record count behind ``len(file)``.
    """

    def __init__(self, transport: RemoteTransport, first_shard: int):
        self._transport = transport
        #: Only the keys are consulted (``min()`` for the cold image).
        self.servers = {first_shard: None}

    def total_records(self) -> int:
        return self._transport.control({"cmd": "total_records"})

    def replica_of(self, shard_id: int) -> Optional[int]:
        """The live read replica for ``shard_id`` (None when unreplicated).

        Asked per scan leg and never cached: a stale answer would route
        a scan at a promoted (now primary) or retired server.
        """
        return self._transport.control(
            {"cmd": "replica_of", "shard": shard_id}
        )


class RemoteCluster:
    """Quacks like a :class:`Cluster` for :class:`DistributedFile`."""

    def __init__(
        self, transport: RemoteTransport, alphabet: Alphabet, first_shard: int
    ):
        self.router = transport
        self.alphabet = alphabet
        self.registry = transport.registry
        self.coordinator = _RemoteCoordinator(transport, first_shard)


class RemoteSession:
    """One connected serving session: loop thread, socket, file facade.

    >>> with connect(path="/tmp/th.sock") as session:
    ...     session.file.insert("key", "value")

    The server's ``hello`` supplies the alphabet, the first shard id
    (the cold image's single region) and a server-minted client id, so
    request ids stay unique across every client of the deployment.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        if (path is None) == (host is None):
            raise ValueError("connect with either path= or host=/port=")
        self.runner = LoopRunner()
        try:
            if path is not None:
                self.conn = self.runner.call(
                    AsyncClient.open_unix(path), DEFAULT_WALL_TIMEOUT
                )
            else:
                self.conn = self.runner.call(
                    AsyncClient.open_tcp(host, int(port)), DEFAULT_WALL_TIMEOUT
                )
        except BaseException:  # repro-lint: disable=TH002 -- re-raised: only stops the loop thread a failed connect would otherwise leak
            self.runner.stop()
            raise
        self.transport = RemoteTransport(self.runner, self.conn, registry)
        hello = self.transport.control({"cmd": "hello"})
        self.cluster = RemoteCluster(
            self.transport,
            Alphabet(hello["alphabet"]),
            hello["first_shard"],
        )
        self.file = DistributedFile(
            self.cluster, client_id=hello["client_id"], retry=retry
        )
        self._closed = False

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self.runner.call(self.conn.close(), DEFAULT_WALL_TIMEOUT)
        finally:
            self.runner.stop()

    def __enter__(self) -> "RemoteSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def connect(
    path: Optional[str] = None,
    host: Optional[str] = None,
    port: Optional[int] = None,
    retry: Optional[RetryPolicy] = None,
    registry: Optional[MetricsRegistry] = None,
) -> RemoteSession:
    """Open a :class:`RemoteSession` over UDS (``path``) or TCP."""
    return RemoteSession(
        path=path, host=host, port=port, retry=retry, registry=registry
    )
