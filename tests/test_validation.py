"""The one-command validation harness."""

from repro.analysis.validation import CLAIMS, validate_all


class TestValidation:
    def test_all_claims_pass(self):
        lines = []
        results = validate_all(printer=lines.append)
        assert all(r["ok"] for r in results), [
            r["claim"] for r in results if not r["ok"]
        ]
        assert len(results) == len(CLAIMS)
        assert lines[-1].startswith(f"{len(CLAIMS)}/{len(CLAIMS)}")

    def test_claim_registry_well_formed(self):
        for claim_id, (description, checker) in CLAIMS.items():
            assert isinstance(description, str) and description
            assert callable(checker)
            assert claim_id == claim_id.lower()

    def test_failure_reported_not_raised(self, monkeypatch):
        import repro.analysis.validation as v

        def broken():
            raise RuntimeError("boom")

        monkeypatch.setitem(v.CLAIMS, "broken", ("always fails", broken))
        lines = []
        results = validate_all(printer=lines.append)
        broken_rows = [r for r in results if r["claim"] == "broken"]
        assert broken_rows and not broken_rows[0]["ok"]
        assert any("FAIL" in line and "broken" in line for line in lines)

    def test_cli_validate_exit_code(self, capsys):
        from repro.cli import main

        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "12/12 claims reproduced" in out
