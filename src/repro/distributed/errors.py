"""The error vocabulary of the fault-tolerant TH* layer.

Everything derives from :class:`DistributedError` (itself a
:class:`~repro.core.errors.TrieHashingError`, so existing catch-all
handlers keep working). The split that matters operationally is
*retryable* versus not:

* :class:`RetryableError` subclasses model transient fabric conditions —
  a lost message, a reply that missed its deadline, a crashed server.
  :class:`~repro.distributed.client.DistributedFile` absorbs them with
  bounded exponential-backoff retries; callers normally never see them.
* Everything else is a protocol violation (an op addressed to a shard
  that has never existed, an unknown op kind) or the terminal
  :class:`ShardUnavailableError` a client raises once its retry budget
  is exhausted — the typed "I could not reach the data" answer that
  replaces silently wrong results.
"""

from __future__ import annotations

from ..core.errors import TrieHashingError

__all__ = [
    "DistributedError",
    "ConfigurationError",
    "UnknownShardError",
    "ProtocolError",
    "RetryableError",
    "MessageLostError",
    "OpTimeoutError",
    "ServerDownError",
    "ShardUnavailableError",
    "ReplicationError",
    "ReplicaStaleError",
    "FailoverError",
]


class DistributedError(TrieHashingError):
    """Base class for every error raised by the TH* shard layer."""


class ConfigurationError(DistributedError, ValueError):
    """A shard-layer component was built with invalid parameters.

    Subclasses :class:`ValueError` so construction-time validation keeps
    its conventional type for callers, while staying inside the typed
    hierarchy the ``TH003`` lint rule enforces.
    """


class UnknownShardError(DistributedError):
    """A message was addressed to a shard id no server has ever owned.

    Shard splits only ever *add* servers, so a stale client image can
    never produce this — seeing it means a routing bug, not staleness.
    """


class ProtocolError(DistributedError):
    """A message violated the op/reply vocabulary (unknown op kind)."""


class RetryableError(DistributedError):
    """Base class for transient delivery failures worth retrying."""


class MessageLostError(RetryableError):
    """A request or reply was dropped by the (simulated) network."""


class OpTimeoutError(RetryableError):
    """The reply arrived after the client's per-op deadline.

    The server may or may not have executed the operation — exactly the
    ambiguity that makes idempotent retries (request ids + the server
    dedup window) necessary.
    """


class ServerDownError(RetryableError):
    """The target server is crashed; the connection was refused."""


class ShardUnavailableError(DistributedError):
    """A client exhausted its retry budget against one shard.

    Raised instead of returning a wrong or partial answer; the original
    transient error is chained as ``__cause__``.
    """


class ReplicationError(DistributedError):
    """Base class for primary/backup replication failures."""


class ReplicaStaleError(ReplicationError):
    """A read replica refused a scan it cannot serve within bounds.

    Raised when the backup has an unresolved replication gap beyond its
    policy's staleness bound, or when the addressed range is not owned
    by its primary. Deliberately *not* retryable: retrying against the
    same replica cannot help — the client falls back to the primary
    immediately instead.
    """


class FailoverError(ReplicationError):
    """A failover or migration step could not be performed safely."""
