"""Workload generators.

Everything the paper's experiments insert: the 31 most-used English words
of Fig 1 (/KNU73/), the "randomly drawn then sorted" key sets of Figures
10–11, random/ascending/descending orders, skewed distributions, and a
deterministic English-like synthetic dictionary standing in for the
20,000-word UNIX dictionary the paper proposes as a validation corpus.
All generators are seeded and reproducible.
"""

from .english import MOST_USED_WORDS, synthetic_dictionary
from .generators import KeyGenerator

__all__ = ["MOST_USED_WORDS", "synthetic_dictionary", "KeyGenerator"]
