"""THCL trie expansion — splitting without nil nodes (Section 4.1).

The conceptual change of THCL is that *several trie leaves may point to
the same bucket* and nil leaves disappear. All structure changes of the
refined method — bucket splits, redistribution to a neighbour (Section
4.4), and the borrow step of guaranteed-load deletions (Section 4.3) —
reduce to one primitive implemented here: **insert a boundary** ``s``
into the trie and repoint the leaves around it so that keys at or below
``s`` in the affected region map to one bucket and keys above it to
another.

The primitive follows the paper's modified step 3 exactly:

* step 3.0 — locate the leaf the split key is mapped to (Algorithm A1);
* step 3.1 — cut the digits of the split string already on that leaf's
  logical path;
* step 3.2/3.3 — graft a single node or a left-descending chain whose
  right leaves all carry the right-hand bucket (no nils);
* step 3.4 — when *all* digits were already on the path, no node is
  added: only the neighbouring leaf pointers change;
* step 3.5 — walk the following (or preceding) leaves and repoint those
  still carrying the old bucket.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, NamedTuple, Optional

from .cells import edge_target, is_edge, is_leaf
from .errors import TrieCorruptionError
from .keys import common_prefix_length
from .trie import Location, Trie

if TYPE_CHECKING:  # runtime cycle: storage imports core
    from ..storage.wal import WALWriter

__all__ = ["BoundaryInsertion", "insert_boundary", "collapse_equal_leaf_nodes"]


class BoundaryInsertion(NamedTuple):
    """What an :func:`insert_boundary` call did to the trie."""

    #: Number of internal nodes added (0 for the pure step-3.4 case).
    nodes_added: int
    #: Leaves repointed by the step-3.5 walks (both directions).
    leaves_repointed: int


def insert_boundary(
    trie: Trie,
    anchor_key: str,
    boundary: str,
    left_bucket: int,
    right_bucket: int,
    old_bucket: int,
    journal: Optional[WALWriter] = None,
) -> BoundaryInsertion:
    """Install boundary ``s`` so the old bucket's region is re-cut.

    ``anchor_key`` must currently map to ``old_bucket`` and satisfy
    ``(anchor)_i <= s`` — in a bucket split it is the split key ``c'``;
    in redistribution it is the highest key that ends up on the left of
    the cut. After the call, within the run of leaves that carried
    ``old_bucket``, those covering keys at or below ``s`` carry
    ``left_bucket`` and those above carry ``right_bucket``.

    The function performs no record movement — that is the caller's job —
    and never creates nil leaves.
    """
    result = trie.search(anchor_key)
    if result.bucket != old_bucket:
        raise TrieCorruptionError(
            f"anchor key {anchor_key!r} maps to bucket {result.bucket}, "
            f"expected {old_bucket}"
        )
    shared = common_prefix_length(boundary, result.path)  # step 3.1
    new_digits = boundary[shared:]
    repointed = 0

    if new_digits:  # steps 3.2 / 3.3: graft one node or a chain
        chain_ptr, chain_cells = trie.build_left_chain(
            new_digits,
            first_position=shared,
            bottom_left=left_bucket,
            right_fill=right_bucket,
            bottom_right=right_bucket,
        )
        trie.set_ptr(result.location, chain_ptr)
        base_trail = list(result.trail)
        left_trail = base_trail + [(c, "L") for c in chain_cells]
        right_trail = base_trail + [(c, "L") for c in chain_cells[:-1]]
        right_trail.append((chain_cells[-1], "R"))
    else:
        # Step 3.4: every digit of s is already on the path, which by
        # prefix closure means s is an existing boundary. Re-anchor at
        # the leaf immediately *left of* that boundary (a virtual search
        # with max-digit padding finds it): it covers keys up to s, and
        # the leaves on its two sides split between the buckets. The
        # anchor's own leaf may lie several boundaries below s.
        edge = trie.search(boundary, pad="max")
        if edge.bucket == old_bucket:
            trie.set_ptr(edge.location, left_bucket)
        left_trail = list(edge.trail)
        right_trail = list(edge.trail)

    # Step 3.5, rightward: leaves after the cut still carrying the old
    # bucket now belong to the right side. Leaves already carrying the
    # right bucket (the grafted chain's own right leaves) are skipped.
    if right_bucket != old_bucket:
        for location, ptr in trie.successor_leaves(right_trail):
            if ptr == right_bucket:
                continue
            if is_leaf(ptr) and ptr == old_bucket:
                trie.set_ptr(location, right_bucket)
                repointed += 1
            else:
                break
    # Mirror walk for the redistribution-to-predecessor case: leaves
    # before the cut still carrying the old bucket belong to the left.
    if left_bucket != old_bucket:
        for location, ptr in trie.predecessor_leaves(left_trail):
            if ptr == left_bucket:
                continue
            if is_leaf(ptr) and ptr == old_bucket:
                trie.set_ptr(location, left_bucket)
                repointed += 1
            else:
                break
    if journal is not None:
        journal.log_boundary_insert(
            boundary, left_bucket, right_bucket, len(new_digits), repointed
        )
    return BoundaryInsertion(len(new_digits), repointed)


def collapse_equal_leaf_nodes(trie: Trie) -> int:
    """Remove nodes whose two children are the same leaf (Fig 9 shrink).

    Redistribution can leave a node pointing to the same bucket through
    both edges; the paper notes one "may leave this node as is or may
    replace it and its leaves by a single leaf". This pass performs the
    replacement bottom-up over the whole trie and returns the number of
    cells freed. It never changes the key-to-bucket mapping.
    """
    freed = 0
    # Iterative post-order: simplify children before testing a node.
    stack: list[tuple[Location, bool]] = [(Location(None, "R"), False)]
    while stack:
        location, expanded = stack.pop()
        ptr = trie.get_ptr(location)
        if not is_edge(ptr):
            continue
        index = edge_target(ptr)
        cell = trie.cells[index]
        if not expanded:
            stack.append((location, True))
            stack.append((Location(index, "L"), False))
            stack.append((Location(index, "R"), False))
            continue
        if (
            not is_edge(cell.lp)
            and not is_edge(cell.rp)
            and cell.lp == cell.rp
        ):
            trie.set_ptr(location, cell.lp)
            trie.cells.free(index)
            freed += 1
    return freed
