"""Ordered access versus a sorted-dict oracle, under random churn.

Hypothesis drives random insert/delete histories into a trie-hashing
file and a plain ``dict`` side by side, then checks every ordered-access
surface — :class:`~repro.core.cursor.Cursor` walks in both directions,
``seek`` landings, and ``range_items`` / ``scan`` windows — against the
sorted oracle. The same properties run over basic TH, THCL (shared
leaves, guaranteed-load merges) and MLTH (scans only: the multilevel
file has no cursor support).
"""

import bisect

import pytest
from hypothesis import given, strategies as st

from repro import MLTHFile, SplitPolicy, THFile
from repro.core.cursor import Cursor
from repro.core.range_query import scan

# Letters only (no trailing-space canonicalisation surprises); a tiny
# alphabet and short keys maximise duplicate churn and bucket reuse.
KEYS = st.text(alphabet="abcdefg", min_size=1, max_size=5)

#: One churn history: insert (op=True) / delete (op=False) requests.
HISTORIES = st.lists(st.tuples(st.booleans(), KEYS), max_size=120)

ENGINES = {
    "th": lambda: THFile(bucket_capacity=4),
    "thcl": lambda: THFile(bucket_capacity=4, policy=SplitPolicy.thcl()),
}


def churn(f, history):
    """Apply a history to ``f`` and return the surviving oracle dict."""
    oracle = {}
    for is_insert, key in history:
        if is_insert:
            if key not in oracle:
                f.insert(key, key.upper())
                oracle[key] = key.upper()
        elif key in oracle:
            assert f.delete(key) == oracle.pop(key)
    assert len(f) == len(oracle)
    return oracle


@pytest.mark.parametrize("engine", sorted(ENGINES))
class TestCursorAgainstOracle:
    @given(history=HISTORIES)
    def test_forward_walk_is_sorted_oracle(self, engine, history):
        f = ENGINES[engine]()
        oracle = churn(f, history)
        cur = Cursor(f)
        got = []
        ok = cur.first()
        assert ok == bool(oracle)
        while cur.valid:
            got.append(cur.item())
            cur.next()
        assert got == sorted(oracle.items())

    @given(history=HISTORIES)
    def test_backward_walk_is_reversed_oracle(self, engine, history):
        f = ENGINES[engine]()
        oracle = churn(f, history)
        cur = Cursor(f)
        got = []
        ok = cur.last()
        assert ok == bool(oracle)
        while cur.valid:
            got.append(cur.item())
            cur.prev()
        assert got == sorted(oracle.items(), reverse=True)

    @given(history=HISTORIES, probe=KEYS)
    def test_seek_lands_on_first_key_at_or_after(self, engine, history, probe):
        f = ENGINES[engine]()
        oracle = churn(f, history)
        ordered = sorted(oracle)
        cur = Cursor(f)
        found = cur.seek(probe)
        at = bisect.bisect_left(ordered, probe)
        if at == len(ordered):
            assert not found and not cur.valid
        else:
            assert found
            assert cur.key() == ordered[at]
            # The walk from a seek landing covers exactly the tail.
            tail = []
            while cur.valid:
                tail.append(cur.key())
                cur.next()
            assert tail == ordered[at:]

    @given(history=HISTORIES, probe=KEYS)
    def test_seek_then_prev_steps_below_probe(self, engine, history, probe):
        f = ENGINES[engine]()
        oracle = churn(f, history)
        ordered = sorted(oracle)
        cur = Cursor(f)
        at = bisect.bisect_left(ordered, probe)
        if cur.seek(probe):
            went_back = cur.prev()
            if at == 0:
                assert not went_back and not cur.valid
            else:
                assert went_back and cur.key() == ordered[at - 1]

    @given(history=HISTORIES, window=st.tuples(KEYS, KEYS))
    def test_scan_window_matches_oracle_slice(self, engine, history, window):
        f = ENGINES[engine]()
        oracle = churn(f, history)
        low, high = sorted(window)
        expected = [
            (k, v) for k, v in sorted(oracle.items()) if low <= k <= high
        ]
        assert list(scan(f, low, high)) == expected
        assert list(f.range_items(low, high)) == expected


class TestMLTHScansAgainstOracle:
    # MLTH has no cursor; its ordered surface is range_items.
    @given(history=HISTORIES, window=st.tuples(KEYS, KEYS))
    def test_range_items_matches_oracle_slice(self, history, window):
        f = MLTHFile(bucket_capacity=4, page_capacity=8)
        oracle = churn(f, history)
        low, high = sorted(window)
        expected = [
            (k, v) for k, v in sorted(oracle.items()) if low <= k <= high
        ]
        assert list(f.range_items(low, high)) == expected
        assert list(f.range_items()) == sorted(oracle.items())
