"""Unit tests for the TH-trie structure and traversal."""

import pytest

from repro import LOWERCASE, Trie, TrieCorruptionError
from repro.core.boundaries import BoundaryModel
from repro.core.cells import NIL, edge_to, is_nil
from repro.core.trie import Location, ROOT_LOCATION

A = LOWERCASE


def single_node_trie(digit="h", number=0, left=0, right=1):
    trie = Trie(A, root_ptr=0)
    index = trie.cells.allocate(digit, number, left, right)
    trie.root = edge_to(index)
    return trie


class TestBasics:
    def test_initial_trie_is_a_leaf(self):
        trie = Trie(A)
        assert trie.root == 0
        assert trie.node_count == 0
        result = trie.search("anything")
        assert result.bucket == 0
        assert result.path == ""
        assert result.location == ROOT_LOCATION

    def test_get_set_root_ptr(self):
        trie = Trie(A)
        trie.set_ptr(ROOT_LOCATION, 5)
        assert trie.get_ptr(ROOT_LOCATION) == 5

    def test_get_set_cell_ptr(self):
        trie = single_node_trie()
        loc = Location(0, "L")
        assert trie.get_ptr(loc) == 0
        trie.set_ptr(loc, 9)
        assert trie.get_ptr(loc) == 9

    def test_depth(self):
        assert Trie(A).depth() == 0
        assert single_node_trie().depth() == 1


class TestBuildLeftChain:
    def test_single_digit_chain(self):
        trie = Trie(A)
        ptr, cells = trie.build_left_chain("h", 0, bottom_left=0, right_fill=NIL, bottom_right=1)
        assert len(cells) == 1
        cell = trie.cells[cells[0]]
        assert (cell.dv, cell.dn) == ("h", 0)
        assert cell.lp == 0 and cell.rp == 1

    def test_multi_digit_chain_structure(self):
        trie = Trie(A)
        ptr, cells = trie.build_left_chain("szh", 1, bottom_left=0, right_fill=NIL, bottom_right=1)
        assert len(cells) == 3
        top, mid, bottom = (trie.cells[c] for c in cells)
        assert (top.dv, top.dn) == ("s", 1)
        assert (mid.dv, mid.dn) == ("z", 2)
        assert (bottom.dv, bottom.dn) == ("h", 3)
        assert top.lp == edge_to(cells[1])
        assert is_nil(top.rp)
        assert mid.lp == edge_to(cells[2])
        assert is_nil(mid.rp)
        assert bottom.lp == 0 and bottom.rp == 1

    def test_thcl_chain_fills_right_with_bucket(self):
        trie = Trie(A)
        _, cells = trie.build_left_chain("ab", 0, bottom_left=3, right_fill=7, bottom_right=7)
        assert trie.cells[cells[0]].rp == 7
        assert trie.cells[cells[1]].rp == 7

    def test_empty_chain_rejected(self):
        with pytest.raises(TrieCorruptionError):
            Trie(A).build_left_chain("", 0, 0, NIL, 1)


class TestInorder:
    def test_single_node(self):
        trie = single_node_trie("h", 0, 0, 1)
        events = list(trie.inorder())
        kinds = [e[0] for e in events]
        assert kinds == ["leaf", "node", "leaf"]
        assert events[0][2] == 0  # left leaf ptr
        assert events[1][2] == "h"  # boundary
        assert events[2][2] == 1

    def test_leaf_paths_are_right_cuts(self, fig1_file):
        trie = fig1_file.trie
        leaves = trie.leaves_in_order()
        boundaries = trie.boundaries()
        # Leaf j's logical path equals boundary j; the last leaf has "".
        for j, (_, _, path) in enumerate(leaves[:-1]):
            assert path == boundaries[j]
        assert leaves[-1][2] == ""

    def test_boundaries_sorted(self, fig1_file):
        from repro.core.boundaries import boundary_sort_key

        bs = fig1_file.trie.boundaries()
        keys = [boundary_sort_key(s, A) for s in bs]
        assert keys == sorted(keys)

    def test_leaf_count_is_node_count_plus_one(self, fig1_file):
        trie = fig1_file.trie
        assert len(trie.leaves_in_order()) == trie.node_count + 1


class TestSuccessorWalks:
    def test_successor_leaves_cover_the_rest(self, fig1_file):
        trie = fig1_file.trie
        leaves = trie.leaves_in_order()
        # From the first leaf's trail, successors enumerate leaves 1..n.
        first_key = "a"
        result = trie.search(first_key)
        ptrs = [ptr for _, ptr in trie.successor_leaves(result.trail)]
        assert ptrs == [ptr for _, ptr, _ in leaves[1:]]

    def test_predecessor_leaves_reverse(self, fig1_file):
        trie = fig1_file.trie
        leaves = trie.leaves_in_order()
        result = trie.search("zz")  # maps to the last leaf
        ptrs = [ptr for _, ptr in trie.predecessor_leaves(result.trail)]
        assert ptrs == [ptr for _, ptr, _ in reversed(leaves[:-1])]

    def test_walk_from_middle(self, fig1_file):
        trie = fig1_file.trie
        result = trie.search("he")
        after = [ptr for _, ptr in trie.successor_leaves(result.trail)]
        before = [ptr for _, ptr in trie.predecessor_leaves(result.trail)]
        all_ptrs = [ptr for _, ptr, _ in trie.leaves_in_order()]
        at = all_ptrs.index(result.ptr)
        assert after == all_ptrs[at + 1 :]
        assert before == list(reversed(all_ptrs[:at]))


class TestModelRoundTrip:
    def test_to_model_matches_file(self, fig1_file):
        model = fig1_file.trie.to_model()
        assert model.boundaries == fig1_file.trie.boundaries()
        model.check()

    def test_from_model_preserves_mapping(self, fig1_file):
        model = fig1_file.trie.to_model()
        rebuilt = Trie.from_model(model)
        rebuilt.check()
        for word in fig1_file.keys():
            assert rebuilt.search(word).bucket == fig1_file.trie.search(word).bucket

    def test_from_model_with_nil_children(self):
        model = BoundaryModel(A, ["h"], [None, 0])
        trie = Trie.from_model(model)
        assert trie.search("a").bucket is None
        assert trie.search("x").bucket == 0

    def test_rebalanced_equivalence_and_depth(self, fig1_file):
        trie = fig1_file.trie
        balanced = trie.rebalanced()
        balanced.check()
        assert balanced.to_model() == trie.to_model()
        assert balanced.depth() <= trie.depth()

    def test_pick_first_and_last_still_valid(self, fig1_file):
        model = fig1_file.trie.to_model()
        for pick in ("first", "last"):
            t = Trie.from_model(model, pick=pick)
            t.check()
            assert t.to_model() == model

    def test_chain_model_builds_valid_deep_trie(self):
        # Pure logical-parent chain: construction cannot balance it.
        bounds = ["a" * k for k in range(30, 0, -1)]
        model = BoundaryModel(A, bounds, list(range(31)))
        trie = Trie.from_model(model)
        trie.check()
        assert trie.depth() == 30


class TestCheck:
    def test_detects_unsorted_boundaries(self):
        trie = Trie(A)
        i2 = trie.cells.allocate("a", 0, 1, 2)
        i1 = trie.cells.allocate("b", 0, 0, edge_to(i2))
        trie.root = edge_to(i1)
        # 'a' under the right edge of 'b' is out of order.
        with pytest.raises(TrieCorruptionError):
            trie.check()

    def test_detects_unreachable_cells(self):
        trie = single_node_trie()
        trie.cells.allocate("z", 0, 5, 6)  # never linked
        with pytest.raises(TrieCorruptionError):
            trie.check()

    def test_detects_path_gap(self):
        trie = Trie(A)
        # Digit number 2 directly under the root: positions 0-1 missing.
        index = trie.cells.allocate("h", 2, 0, 1)
        trie.root = edge_to(index)
        with pytest.raises(TrieCorruptionError):
            trie.check()

    def test_detects_missing_logical_parent(self):
        trie = Trie(A)
        inner = trie.cells.allocate("b", 1, 0, 1)
        outer = trie.cells.allocate("h", 0, edge_to(inner), 2)
        trie.root = edge_to(outer)
        # Boundary 'hb' exists but 'h'... actually 'h' exists; build one
        # where the parent is absent: ('b',1) under ('h',0) gives 'hb'
        # whose prefix 'h' IS present - so craft a deeper gap instead.
        trie.check()  # this one is legal
        trie2 = Trie(A)
        deep = trie2.cells.allocate("c", 2, 0, 1)
        mid = trie2.cells.allocate("b", 1, edge_to(deep), 2)
        top = trie2.cells.allocate("h", 0, edge_to(mid), 3)
        trie2.root = edge_to(top)
        # boundaries: 'hbc', 'hb', 'h' - closed; remove 'hb' by pointing
        # 'h' straight at the deep node:
        trie2.cells[top].lp = edge_to(deep)
        trie2.cells[mid].lp = 4
        trie2.cells.free(mid)
        with pytest.raises(TrieCorruptionError):
            trie2.check()

    def test_expect_no_nil(self):
        trie = Trie(A)
        index = trie.cells.allocate("h", 0, 0, NIL)
        trie.root = edge_to(index)
        trie.check()  # nil fine for the basic method
        with pytest.raises(TrieCorruptionError):
            trie.check(expect_no_nil=True)

    def test_contiguity_of_shared_leaves(self):
        trie = Trie(A)
        # leaves: 0, 1, 0 - bucket 0 split by bucket 1: illegal in THCL.
        low = trie.cells.allocate("b", 0, 0, 1)
        top = trie.cells.allocate("d", 0, edge_to(low), 0)
        trie.root = edge_to(top)
        trie.check()
        with pytest.raises(TrieCorruptionError):
            trie.check(expect_no_nil=True)

    def test_collapse_node(self):
        trie = Trie(A)
        index = trie.cells.allocate("h", 0, 3, 3)
        trie.root = edge_to(index)
        trie.collapse_node(ROOT_LOCATION)
        assert trie.root == 3
        assert trie.node_count == 0

    def test_collapse_rejects_distinct_leaves(self):
        trie = single_node_trie()
        with pytest.raises(TrieCorruptionError):
            trie.collapse_node(ROOT_LOCATION)
