"""A block-addressed simulated disk with exact access accounting.

Blocks hold arbitrary Python payloads (buckets, trie pages, B-tree nodes);
sizes in bytes are accounted separately through :mod:`repro.storage.layout`
because the simulation's claims concern *counts* and *ratios*, not
serialisation throughput. Every :meth:`SimulatedDisk.read` and
:meth:`SimulatedDisk.write` bumps the :class:`DiskStats` counters and,
when a latency model is attached, advances the simulated clock.
"""

from __future__ import annotations

from typing import Optional

from ..core.errors import StorageError
from ..obs.tracer import TRACER
from .latency import LatencyModel

__all__ = ["DiskStats", "SimulatedDisk"]


class DiskStats:
    """Counters for one simulated device.

    Attributes
    ----------
    reads, writes:
        Number of block reads/writes that actually reached the device
        (buffer-pool hits do not count, matching the paper's "disk
        access" notion).
    simulated_seconds:
        Total simulated I/O time when a latency model is attached.
    faults:
        Accesses rejected by an injected fault (see
        :class:`~repro.storage.faults.FaultyDisk`); a faulted access is
        counted here and *not* in ``reads``/``writes``, since it never
        touched the payload.
    """

    __slots__ = ("reads", "writes", "simulated_seconds", "faults")

    def __init__(self) -> None:
        self.reads = 0
        self.writes = 0
        self.simulated_seconds = 0.0
        self.faults = 0

    @property
    def accesses(self) -> int:
        """Total device accesses (reads + writes)."""
        return self.reads + self.writes

    def snapshot(self) -> DiskStats:
        """A copy of the current counters (for windowed measurements)."""
        copy = DiskStats()
        copy.reads = self.reads
        copy.writes = self.writes
        copy.simulated_seconds = self.simulated_seconds
        copy.faults = self.faults
        return copy

    def delta(self, earlier: DiskStats) -> DiskStats:
        """Counters accumulated since ``earlier`` (a prior snapshot)."""
        diff = DiskStats()
        diff.reads = self.reads - earlier.reads
        diff.writes = self.writes - earlier.writes
        diff.simulated_seconds = self.simulated_seconds - earlier.simulated_seconds
        diff.faults = self.faults - earlier.faults
        return diff

    def reset(self) -> None:
        """Zero all counters."""
        self.reads = 0
        self.writes = 0
        self.simulated_seconds = 0.0
        self.faults = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DiskStats(reads={self.reads}, writes={self.writes}, "
            f"faults={self.faults}, t={self.simulated_seconds:.6f}s)"
        )


class SimulatedDisk:
    """A dictionary-of-blocks device that meters every access.

    Parameters
    ----------
    latency:
        Optional :class:`LatencyModel`; when given, each access advances
        ``stats.simulated_seconds`` by a seek + rotation + transfer cost.
    block_bytes:
        Nominal block size used by the latency model's transfer term and
        by capacity reporting.
    name:
        Device label carried on traced ``disk_read``/``disk_write``
        events (e.g. ``"buckets"``, ``"pages"``, ``"btree"``).
    """

    def __init__(
        self,
        latency: Optional[LatencyModel] = None,
        block_bytes: int = 4096,
        name: str = "disk",
    ):
        self._blocks: dict[int, object] = {}
        self._next_id = 0
        self.block_bytes = block_bytes
        self.latency = latency
        self.name = name
        self.stats = DiskStats()

    def __len__(self) -> int:
        """Number of allocated blocks."""
        return len(self._blocks)

    def allocate(self, payload: object) -> int:
        """Allocate a fresh block holding ``payload``.

        Allocation itself is metadata and charges no access — the caller's
        first :meth:`write` of real content is the charged one, matching
        the paper's one-access cost for appending a bucket.
        """
        block_id = self._next_id
        self._next_id += 1
        self._blocks[block_id] = payload
        return block_id

    def read(self, block_id: int) -> object:
        """Fetch a block's payload; counts as a read."""
        try:
            payload = self._blocks[block_id]
        except KeyError:
            raise StorageError(f"block {block_id} does not exist") from None
        self._account(write=False)
        return payload

    def write(self, block_id: int, payload: object) -> None:
        """Overwrite a block's payload; counts as a write."""
        if block_id not in self._blocks:
            raise StorageError(f"block {block_id} does not exist")
        self._blocks[block_id] = payload
        self._account(write=True)

    def free(self, block_id: int) -> None:
        """Release a block (no access is charged; deallocation is metadata)."""
        if self._blocks.pop(block_id, None) is None:
            raise StorageError(f"block {block_id} does not exist")

    def peek(self, block_id: int) -> object:
        """Read a block *without* charging an access (test/debug helper)."""
        try:
            return self._blocks[block_id]
        except KeyError:
            raise StorageError(f"block {block_id} does not exist") from None

    def _account(self, write: bool) -> None:
        if write:
            self.stats.writes += 1
        else:
            self.stats.reads += 1
        seconds = 0.0
        if self.latency is not None:
            seconds = self.latency.access_seconds(self.block_bytes)
            self.stats.simulated_seconds += seconds
        if TRACER.enabled:
            TRACER.record_access(write, self.name, seconds)
