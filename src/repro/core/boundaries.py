"""The canonical *boundary-set* view of a TH-trie.

Every internal node ``(d, i)`` of a TH-trie stands for one *boundary
string*: its logical path through its left edge, ``(C)_{i-1} · d`` (the
paper calls these logical paths; we call the left-edge form a *boundary*
because it is the cut point of the key space). Two tries with the same
boundary set and the same leaf assignment are *equivalent* in the paper's
sense — they map every key to the same bucket — no matter how differently
their binary shapes look.

This module implements that canonical view:

* a total order on boundaries (``boundary_sort_key``): a boundary ``s``
  means "all keys whose ``len(s)``-digit space-padded prefix is ``<= s``",
  which is the same as comparing boundaries padded on the right with the
  *largest* digit. Concretely, if one boundary is a proper prefix of
  another, the **longer** one is the smaller boundary (``'ha' < 'h'``,
  because the keys at or below ``'ha'`` are a subset of those at or below
  ``'h'``).
* :class:`BoundaryModel` — a sorted boundary list plus one child per gap
  (a bucket address, or ``None`` for the basic method's *nil* leaves).
  The model is the oracle for property-based tests, the intermediate form
  for trie balancing and reconstruction (/TOR83/), and the substrate of
  the multilevel method's pages.

A boundary set must be *prefix-closed*: a node ``(d, i)`` with ``i >= 1``
can only exist below its logical parent ``(C_{i-2}·c, i-1)``, so every
proper prefix (of length >= 1) of a boundary is itself a boundary. The
splitting algorithms maintain this by construction; :meth:`BoundaryModel.check`
verifies it.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Optional

from .alphabet import Alphabet
from .errors import TrieCorruptionError
from .keys import prefix_le

__all__ = [
    "boundary_sort_key",
    "boundary_lt",
    "boundary_le",
    "gap_index",
    "BoundaryModel",
]

#: Sentinel digit rank used to max-pad boundaries; larger than any real rank.
_PAD = 1 << 30


def boundary_sort_key(boundary: str, alphabet: Alphabet) -> tuple[int, ...]:
    """A sort key realising the boundary total order.

    Boundaries compare as if right-padded with the largest digit, so a
    proper prefix sorts *after* its extensions. The returned tuple is the
    digit ranks followed by a pad sentinel, which implements exactly that
    under native tuple comparison.
    """
    return tuple(alphabet.index(ch) for ch in boundary) + (_PAD,)


def boundary_lt(a: str, b: str, alphabet: Alphabet) -> bool:
    """True when boundary ``a`` cuts strictly below boundary ``b``."""
    return boundary_sort_key(a, alphabet) < boundary_sort_key(b, alphabet)


def boundary_le(a: str, b: str, alphabet: Alphabet) -> bool:
    """True when boundary ``a`` cuts at or below boundary ``b``."""
    return boundary_sort_key(a, alphabet) <= boundary_sort_key(b, alphabet)


def gap_index(boundaries: Sequence[str], key: str, alphabet: Alphabet) -> int:
    """Index of the gap (leaf position) a key falls into.

    ``boundaries`` must be sorted in boundary order. Returns the number of
    boundaries the key falls strictly *above*, which is the index of the
    child/leaf holding the key. Runs a binary search on the "key goes left
    of boundary" predicate, which is monotone along the boundary order.
    """
    lo, hi = 0, len(boundaries)
    while lo < hi:
        mid = (lo + hi) // 2
        if prefix_le(key, boundaries[mid], alphabet):
            hi = mid
        else:
            lo = mid + 1
    return lo


class BoundaryModel:
    """A canonical (shape-free) trie: sorted boundaries plus gap children.

    ``children`` has exactly ``len(boundaries) + 1`` entries; ``children[j]``
    is the bucket address of the keys between ``boundaries[j-1]`` (exclusive,
    in boundary order) and ``boundaries[j]`` (inclusive). A child of ``None``
    is a *nil* leaf of the basic method: no bucket is allocated there yet.
    THCL files never contain ``None`` children but may repeat the same
    bucket address over several adjacent gaps (shared leaves, Section 4.1).
    """

    __slots__ = ("alphabet", "boundaries", "children", "_sort_keys")

    def __init__(
        self,
        alphabet: Alphabet,
        boundaries: Iterable[str] = (),
        children: Iterable[Optional[int]] = (0,),
    ):
        self.alphabet = alphabet
        self.boundaries: list[str] = list(boundaries)
        self.children: list[Optional[int]] = list(children)
        if len(self.children) != len(self.boundaries) + 1:
            raise TrieCorruptionError(
                f"{len(self.boundaries)} boundaries need "
                f"{len(self.boundaries) + 1} children, got {len(self.children)}"
            )
        self._sort_keys = [boundary_sort_key(s, alphabet) for s in self.boundaries]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of boundaries (= internal trie nodes = cells)."""
        return len(self.boundaries)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BoundaryModel)
            and other.alphabet == self.alphabet
            and other.boundaries == self.boundaries
            and other.children == self.children
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = []
        for j, child in enumerate(self.children):
            parts.append("nil" if child is None else str(child))
            if j < len(self.boundaries):
                parts.append(f"|{self.boundaries[j]}|")
        return "BoundaryModel(" + " ".join(parts) + ")"

    def locate(self, key: str) -> tuple[int, Optional[int]]:
        """Return ``(gap index, child)`` for ``key``."""
        j = gap_index(self.boundaries, key, self.alphabet)
        return j, self.children[j]

    def locate_sorted(self, keys: Sequence[str]) -> list[int]:
        """Gap indices for *ascending canonical* keys in one merged pass.

        The batched point-op APIs sort their keys once and then walk the
        boundary list and the key list together, so a whole batch costs
        one linear merge instead of a binary search per key. Correctness
        rests on two facts: a key's digit-rank tuple ``K`` (without the
        pad sentinel) satisfies ``prefix_le(key, s)`` iff
        ``K < boundary_sort_key(s)`` — the sentinel breaks every tie the
        right way — so the gap of ``key`` is the count of boundary sort
        keys strictly below ``K``; and native string order on canonical
        keys agrees with rank-tuple order (the alphabet's ``ord``
        contract), so ascending keys yield non-decreasing gaps and the
        merge pointer never moves backwards.
        """
        out: list[int] = []
        j = 0
        sort_keys = self._sort_keys
        n = len(sort_keys)
        rank = self.alphabet.index
        for key in keys:
            k = tuple(map(rank, key))
            while j < n and sort_keys[j] < k:
                j += 1
            out.append(j)
        return out

    def lookup(self, key: str) -> Optional[int]:
        """The bucket address a key is mapped to (``None`` on a nil leaf)."""
        return self.locate(key)[1]

    def gap_of_boundary(self, s: str) -> int:
        """Index ``j`` such that ``boundaries[j] == s``; raises if absent."""
        import bisect

        k = boundary_sort_key(s, self.alphabet)
        j = bisect.bisect_left(self._sort_keys, k)
        if j >= len(self.boundaries) or self.boundaries[j] != s:
            raise KeyError(s)
        return j

    def has_boundary(self, s: str) -> bool:
        """True when ``s`` is one of the model's boundaries."""
        try:
            self.gap_of_boundary(s)
            return True
        except KeyError:
            return False

    def gap_for_boundary(self, s: str) -> int:
        """The gap a (new) boundary ``s`` would cut — its insert slot."""
        import bisect

        return bisect.bisect_left(
            self._sort_keys, boundary_sort_key(s, self.alphabet)
        )

    def buckets_in_order(self) -> list[int]:
        """Distinct bucket addresses left to right (nil gaps skipped)."""
        seen: list[int] = []
        for child in self.children:
            if child is not None and (not seen or seen[-1] != child):
                seen.append(child)
        return seen

    def gaps_of_bucket(self, bucket: int) -> list[int]:
        """All gap indices whose child is ``bucket`` (contiguous in THCL)."""
        return [j for j, c in enumerate(self.children) if c == bucket]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert_boundary(
        self, s: str, left_child: Optional[int], right_child: Optional[int]
    ) -> int:
        """Split the gap that ``s`` falls in, installing the new boundary.

        The gap's old child is discarded in favour of the two given
        children. Returns the index of the new boundary. Raises if ``s``
        is already a boundary.
        """
        import bisect

        k = boundary_sort_key(s, self.alphabet)
        j = bisect.bisect_left(self._sort_keys, k)
        if j < len(self.boundaries) and self.boundaries[j] == s:
            raise TrieCorruptionError(f"boundary {s!r} already present")
        self.boundaries.insert(j, s)
        self._sort_keys.insert(j, k)
        self.children[j : j + 1] = [left_child, right_child]
        return j

    def remove_boundary(self, s: str, keep: str = "left") -> None:
        """Remove boundary ``s``, merging its two gaps.

        ``keep`` selects which side's child survives (``'left'`` or
        ``'right'``).
        """
        j = self.gap_of_boundary(s)
        survivor = self.children[j] if keep == "left" else self.children[j + 1]
        del self.boundaries[j]
        del self._sort_keys[j]
        self.children[j : j + 2] = [survivor]

    def set_child(self, gap: int, child: Optional[int]) -> None:
        """Point gap ``gap`` at ``child``."""
        self.children[gap] = child

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def check(self, require_prefix_closed: bool = True) -> None:
        """Verify ordering, child-count and (optionally) prefix closure."""
        if len(self.children) != len(self.boundaries) + 1:
            raise TrieCorruptionError("children/boundaries length mismatch")
        for a, b in zip(self._sort_keys, self._sort_keys[1:]):
            if not a < b:
                raise TrieCorruptionError("boundaries are not strictly sorted")
        if require_prefix_closed:
            present = set(self.boundaries)
            for s in self.boundaries:
                for l in range(1, len(s)):
                    if s[:l] not in present:
                        raise TrieCorruptionError(
                            f"boundary {s!r} missing prefix {s[:l]!r}: "
                            "the trie would lack the logical parent chain"
                        )

    # ------------------------------------------------------------------
    # Span utilities (used by trie construction and by MLTH pages)
    # ------------------------------------------------------------------
    def root_candidates(self, lo: int = 0, hi: Optional[int] = None) -> list[int]:
        """Boundary indices in ``[lo, hi)`` that may root that span's subtrie.

        A boundary can root a (sub)trie exactly when its logical parent —
        its one-digit-shorter prefix — lies *outside* the span, i.e. is not
        one of the span's own boundaries (paper Section 2.5, condition (ii)
        of the split-node choice). At least one candidate always exists:
        any shortest boundary of the span qualifies.
        """
        if hi is None:
            hi = len(self.boundaries)
        span = set(self.boundaries[lo:hi])
        return [
            j
            for j in range(lo, hi)
            if len(self.boundaries[j]) == 1 or self.boundaries[j][:-1] not in span
        ]
