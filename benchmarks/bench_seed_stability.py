"""Robustness: the headline numbers across independent key draws.

The paper's guarantees are supposed to be distribution-free; this bench
re-runs the deterministic claims over several seeds and checks they hold
exactly, and that the statistical ones (random ~70%) stay in band.
"""

from conftest import once

from repro import SplitPolicy, THFile
from repro.workloads import KeyGenerator


def run():
    rows = []
    for seed in (11, 42, 1981):
        gen = KeyGenerator(seed)
        keys = gen.sorted_keys(2000)
        shuffled = gen.uniform(2000, salt=1)

        compact = THFile(20, SplitPolicy.thcl_ascending(0))
        for k in keys:
            compact.insert(k)
        half = THFile(20, SplitPolicy.thcl_guaranteed_half())
        for k in reversed(keys):
            half.insert(k)
        random_file = THFile(20)
        for k in shuffled:
            random_file.insert(k)
        rows.append(
            {
                "seed": seed,
                "compact a%": round(100 * compact.load_factor(), 1),
                "desc half a%": round(100 * half.load_factor(), 1),
                "random a%": round(100 * random_file.load_factor(), 1),
            }
        )
    return rows


def test_seed_stability(benchmark, report):
    rows = once(benchmark, run)
    report(
        "seed_stability",
        rows,
        "Determinism across seeds: compact=100, unexpected>=50, random~70",
    )
    for r in rows:
        assert r["compact a%"] >= 99.5      # exact guarantee
        assert r["desc half a%"] >= 49.5    # exact guarantee
        assert 60 <= r["random a%"] <= 78   # statistical band
