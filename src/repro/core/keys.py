"""Key and prefix arithmetic.

The paper manipulates keys through *digit prefixes*: ``(c)_l`` denotes the
``(l+1)``-digit prefix of the string ``c`` (and the empty string for
``l < 0``). Because keys are implicitly padded on the right with the
smallest digit (space), a prefix may extend past the end of the key — the
prefix ``(c)_2`` of ``c = 'ha'`` is ``'ha '``. This module implements that
arithmetic once, so the splitting algorithms read like the paper.

All functions take the canonical form of a key (no trailing spaces), as
produced by :meth:`repro.core.alphabet.Alphabet.validate_key`.
"""

from __future__ import annotations

from .alphabet import Alphabet

__all__ = [
    "prefix",
    "compare_prefix",
    "prefix_le",
    "prefix_lt",
    "prefix_gt",
    "common_prefix_length",
    "split_string",
]


def prefix(key: str, l: int, alphabet: Alphabet) -> str:
    """The paper's ``(c)_l``: the ``(l+1)``-digit prefix of ``key``.

    Reading past the end of the key yields space (minimum) digits, so the
    result always has exactly ``l + 1`` digits (and is empty for ``l < 0``).
    """
    if l < 0:
        return ""
    n = l + 1
    if n <= len(key):
        return key[:n]
    return key + alphabet.min_digit * (n - len(key))


def compare_prefix(key: str, bound: str, alphabet: Alphabet) -> int:
    """Three-way compare ``(key)_l`` against ``bound`` where ``l+1 = len(bound)``.

    Returns -1, 0 or +1 as the padded prefix of ``key`` is below, equal to,
    or above ``bound``. This is the comparison at the heart of the key
    search: a key is mapped to the left of a trie node with boundary
    ``bound`` exactly when the result is <= 0.
    """
    # Native string order agrees with digit order (the alphabet's ``ord``
    # contract), so the padded-prefix comparison reduces to two C-level
    # string tests instead of building the prefix:
    #   key > bound: the prefix equals ``bound`` exactly when ``key``
    #     extends it, else it is above;
    #   key < bound: the prefix pads out equal exactly when ``bound`` is
    #     ``key`` plus trailing minimum digits, else it is below.
    if key > bound:
        return 0 if key.startswith(bound) else 1
    if key < bound:
        return 0 if bound.rstrip(alphabet.min_digit) == key else -1
    return 0


def prefix_le(key: str, bound: str, alphabet: Alphabet) -> bool:
    """True when ``(key)_l <= bound`` (the 'go left' condition)."""
    return compare_prefix(key, bound, alphabet) <= 0


def prefix_lt(key: str, bound: str, alphabet: Alphabet) -> bool:
    """True when ``(key)_l < bound`` strictly."""
    return compare_prefix(key, bound, alphabet) < 0


def prefix_gt(key: str, bound: str, alphabet: Alphabet) -> bool:
    """True when ``(key)_l > bound`` (the 'move to the new bucket' test)."""
    return compare_prefix(key, bound, alphabet) > 0


def common_prefix_length(a: str, b: str) -> int:
    """Number of leading digits shared by ``a`` and ``b`` (no padding)."""
    n = min(len(a), len(b))
    i = 0
    while i < n and a[i] == b[i]:
        i += 1
    return i


def split_string(split_key: str, bounding_key: str, alphabet: Alphabet) -> str:
    """Step 1 of Algorithm A2: the *split string* for a bucket split.

    Returns the shortest prefix ``(c')_i`` of ``split_key`` that is strictly
    smaller than the same-length prefix ``(bounding_key)_i``. In the basic
    method the bounding key is the last key of the splitting sequence (the
    paper's ``c''``); THCL's split control passes a closer bounding key to
    make the split deterministic (Section 4.2).

    Raises
    ------
    ValueError
        If ``split_key >= bounding_key``, in which case no such prefix
        exists (the split is impossible).
    """
    if not split_key < bounding_key:
        raise ValueError(
            f"split key {split_key!r} must be strictly below the bounding "
            f"key {bounding_key!r}"
        )
    # The first position where the *padded* digits differ is the shortest
    # prefix length that separates the two keys; split_key < bounding_key
    # guarantees the digit of the split key is the smaller one there.
    # Padding matters: with keys like 'ab' vs 'ab b' the raw strings agree
    # through position 1, but position 2 compares space against space, so
    # the true first difference sits deeper.
    i = 0
    while alphabet.digit_at(split_key, i) == alphabet.digit_at(bounding_key, i):
        i += 1
    return prefix(split_key, i, alphabet)
