"""The transport seam between clients and the shard layer.

A :class:`Transport` is whatever delivers an :class:`~repro.distributed
.messages.Op` to a shard and brings its :class:`~repro.distributed
.messages.Reply` back. :class:`~repro.distributed.client
.DistributedFile` is written against exactly this surface — it never
assumes the shards live in its process — so the same client code runs
over:

* :class:`~repro.distributed.router.InProcessTransport` (the historical
  ``Router``) — synchronous, in-process, with a simulated clock; and
  its fault-injecting subclass
  :class:`~repro.distributed.faults.FaultyRouter`;
* :class:`~repro.serving.client.RemoteTransport` — a real asyncio
  TCP/UDS connection speaking the length-prefixed frame protocol of
  :mod:`repro.distributed.codec`; and its fault-injecting wrapper
  :class:`~repro.serving.faults.FaultyRemoteTransport`.

Every implementation must preserve two semantic contracts:

* **Values, not references.** Whatever crosses ``client_send`` is
  codec-encoded at the boundary; mutating a value after sending it (or
  mutating a reply's value) must never reach the other side.
* **Transient failures are typed.** Delivery problems surface as
  :class:`~repro.distributed.errors.RetryableError` subclasses — lost
  message, per-op deadline exceeded, server down — which the client's
  retry loop absorbs. Anything else propagates as a protocol bug.
"""

from __future__ import annotations

from typing import Optional, Protocol, runtime_checkable

from .messages import Op, Reply

__all__ = ["Transport"]


@runtime_checkable
class Transport(Protocol):
    """What a client needs from the fabric, and nothing more."""

    #: The transport's clock, in seconds. Simulated fabrics advance it
    #: through injected delays and backoff sleeps; real transports
    #: report monotonic wall time. Clients only ever *subtract* two
    #: readings (latency histograms), never interpret the origin.
    now: float

    def client_send(
        self, shard_id: int, op: Op, timeout: Optional[float] = None
    ) -> Reply:
        """Deliver ``op`` to ``shard_id`` and return its reply.

        ``timeout`` is the per-op deadline in the transport's own
        seconds; a delivery that exceeds it raises
        :class:`~repro.distributed.errors.OpTimeoutError` whether or
        not the server executed the operation (the ambiguity request-id
        dedup exists to absorb).
        """
        ...  # pragma: no cover - protocol signature

    def sleep(self, seconds: float) -> None:
        """Block the client for ``seconds`` (retry backoff)."""
        ...  # pragma: no cover - protocol signature

    def note_apply(self, rid: Optional[tuple[int, int]]) -> None:
        """Audit hook: a mutation with ``rid`` actually applied."""
        ...  # pragma: no cover - protocol signature
