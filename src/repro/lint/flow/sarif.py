"""SARIF 2.1.0 export for GitHub code-scanning annotations.

One run object, one driver (``repro-lint``), one result per surviving
violation. Rule metadata comes from both registries — the per-file
rules and the flow rules share the report, so a merged run uploads as a
single artifact. Paths are emitted as given (repo-relative when the
linter is invoked from the repo root, which is how CI runs it).
"""

from __future__ import annotations

import json

from ..engine import LintReport, all_rules
from .rules import all_flow_rules

__all__ = ["to_sarif", "write_sarif"]

_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Engine meta codes (suppression/baseline hygiene) lack a registry
#: entry; give them static descriptions so SARIF stays self-contained.
_META_RULES = {
    "LINT000": "file does not parse",
    "LINT001": "suppression or baseline entry lacks a justification",
    "LINT002": "stale suppression or baseline entry",
}


def to_sarif(report: LintReport) -> dict:
    """Render ``report`` as a SARIF ``log`` dict."""
    rules = []
    for registered in all_rules():
        rules.append(
            {
                "id": registered.code,
                "name": registered.name,
                "shortDescription": {"text": registered.description},
            }
        )
    for flow in all_flow_rules():
        rules.append(
            {
                "id": flow.code,
                "name": flow.name,
                "shortDescription": {"text": flow.description},
            }
        )
    for code, text in _META_RULES.items():
        rules.append(
            {"id": code, "name": code, "shortDescription": {"text": text}}
        )
    results = []
    for violation in report.violations:
        results.append(
            {
                "ruleId": violation.code,
                "level": "error",
                "message": {"text": violation.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": violation.path.replace("\\", "/")
                            },
                            "region": {
                                "startLine": max(1, violation.line),
                                "startColumn": violation.column + 1,
                            },
                        }
                    }
                ],
            }
        )
    return {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://github.com/trie-hashing/repro"
                        ),
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def write_sarif(report: LintReport, path: str) -> None:
    """Serialise the SARIF log for ``report`` to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_sarif(report), handle, indent=2)
        handle.write("\n")
