"""A miniature grid file directory, for the Section 6 comparison.

The grid file (/NIE84/) partitions k-space by split lines per dimension;
its directory is the **cross product** of the dimension scales, with one
entry per grid cell. Under skewed data a split line needed by one hot
cell slices through the entire orthogonal slab, so the directory grows
multiplicatively — the "exponential growth" the paper expects tries to
avoid.

This model keeps the essence and nothing else: points in k attribute
space, per-dimension sorted split lines, bucket-capacity overflow
handling by adding the median split line of the overflowing cell in a
round-robin dimension. ``directory_size`` is the entry count a real grid
directory would allocate.
"""

from __future__ import annotations

import bisect
from collections import Counter
from collections.abc import Sequence

__all__ = ["GridDirectoryModel"]


class GridDirectoryModel:
    """Grid-file directory growth under a point stream."""

    def __init__(self, dimensions: int, bucket_capacity: int = 20):
        if dimensions < 1:
            raise ValueError("need at least one dimension")
        self.dimensions = dimensions
        self.capacity = bucket_capacity
        #: Sorted split lines per dimension.
        self.lines: list[list[str]] = [[] for _ in range(dimensions)]
        self._points: list[tuple[str, ...]] = []
        self._next_dim = 0
        self.splits = 0

    # ------------------------------------------------------------------
    def _cell_of(self, point: Sequence[str]) -> tuple[int, ...]:
        return tuple(
            bisect.bisect_right(self.lines[d], point[d])
            for d in range(self.dimensions)
        )

    def _occupancy(self) -> dict[tuple[int, ...], int]:
        counts: Counter = Counter(self._cell_of(p) for p in self._points)
        return counts

    def insert(self, point: Sequence[str]) -> None:
        """Add a point; split the grid while any cell overflows."""
        point = tuple(point)
        if len(point) != self.dimensions:
            raise ValueError("point dimensionality mismatch")
        self._points.append(point)
        cell = self._cell_of(point)
        occupancy = self._occupancy()
        guard = 0
        while occupancy[cell] > self.capacity:
            self._split_cell(cell)
            self.splits += 1
            cell = self._cell_of(point)
            occupancy = self._occupancy()
            guard += 1
            if guard > 64:  # duplicate-heavy corner: give up splitting
                break

    def _split_cell(self, cell: tuple[int, ...]) -> None:
        members = [p for p in self._points if self._cell_of(p) == cell]
        # Round-robin dimension choice, skipping dimensions whose cell
        # interval cannot be split (all members share the coordinate).
        for attempt in range(self.dimensions):
            dim = (self._next_dim + attempt) % self.dimensions
            coords = sorted(p[dim] for p in members)
            median = coords[len(coords) // 2]
            if median > coords[0] and median not in self.lines[dim]:
                bisect.insort(self.lines[dim], median)
                self._next_dim = (dim + 1) % self.dimensions
                return
        # Fully degenerate cell: add a line anyway to make progress.
        dim = self._next_dim
        self._next_dim = (dim + 1) % self.dimensions
        coords = sorted(p[dim] for p in members)
        candidate = coords[len(coords) // 2] + "a"
        if candidate not in self.lines[dim]:
            bisect.insort(self.lines[dim], candidate)

    # ------------------------------------------------------------------
    def directory_size(self) -> int:
        """Entries of the grid directory: the scales' cross product."""
        size = 1
        for lines in self.lines:
            size *= len(lines) + 1
        return size

    def scale_sizes(self) -> list[int]:
        """Number of intervals per dimension."""
        return [len(lines) + 1 for lines in self.lines]

    def occupied_cells(self) -> int:
        """Cells actually holding data (directory entries minus empties)."""
        return len(self._occupancy())

    def __len__(self) -> int:
        return len(self._points)
