"""The TH* convergence experiment: image quality versus work done.

The table reproduces the headline claim of the TH* papers: a client
starting from the trivial one-region image (everything on shard 0)
converges to near-perfect addressing after a bounded number of Image
Adjustment Messages, while the file itself scales out under load. Each
row is one window of client operations against a growing cluster; the
``hit%`` column is the windowed convergence (fraction of ops the stale
image addressed without a server-side forward).
"""

from __future__ import annotations

from typing import Optional

from ..obs.metrics import MetricsRegistry
from ..obs.recorder import MetricsRecorder
from ..obs.tracer import TRACER
from ..workloads.generators import KeyGenerator
from .coordinator import Cluster, ShardPolicy

__all__ = ["distributed_table"]


def _active_registry() -> Optional[MetricsRegistry]:
    """The registry of the currently traced run, if any.

    Lets ``trie-hashing run distributed --metrics out.json`` capture the
    ``dist_*`` instruments alongside the event-folded ones without the
    experiment needing an explicit registry argument.
    """
    for sink in TRACER._sinks:
        if isinstance(sink, MetricsRecorder):
            return sink.registry
    return None


def distributed_table(
    count: int = 5000,
    bucket_capacity: int = 8,
    seed: int = 42,
    shards: int = 4,
    shard_capacity: int = 256,
    windows: int = 10,
    registry: Optional[MetricsRegistry] = None,
) -> list[dict]:
    """Windowed convergence of a cold client while the file scales out.

    ``count`` keys are inserted (with a sprinkle of lookups and deletes
    folded in, the TH* mixed regime) by a single cold client; after each
    window the row records the windowed hit rate, the cumulative IAM
    boundaries learned, the image size versus the authoritative
    partition, and the shard count.
    """
    cluster = Cluster(
        shards=shards,
        bucket_capacity=bucket_capacity,
        shard_policy=ShardPolicy(shard_capacity=shard_capacity),
        registry=registry if registry is not None else _active_registry(),
    )
    generator = KeyGenerator(seed)
    keys = generator.uniform(count)
    client = cluster.client()  # cold: believes everything is on shard 0
    rows: list[dict] = []
    window = max(1, count // windows)
    inserted: list[str] = []
    for start in range(0, count, window):
        client.reset_window()
        for offset, key in enumerate(keys[start : start + window]):
            client.insert(key, str(start + offset))
            inserted.append(key)
            # The mixed regime: every 8th op reads back an older key,
            # every 64th deletes and reinserts one.
            if offset % 8 == 7:
                client.contains(inserted[(start + offset) // 2])
            if offset % 64 == 63:
                victim = inserted[(start + offset) // 3]
                if client.contains(victim):
                    client.delete(victim)
                    client.put(victim, "back")
        rows.append(
            {
                "ops": client.ops_total,
                "hit%": round(100 * client.convergence(window=True), 2),
                "lifetime_hit%": round(100 * client.convergence(), 2),
                "iam_boundaries": client.iam_boundaries,
                "image_regions": len(client.image),
                "shards": cluster.shard_count(),
                "records": len(cluster),
            }
        )
    cluster.check()
    return rows
