"""Multilevel trie hashing tests (Section 2.5)."""

import pytest

from repro import CapacityError, DuplicateKeyError, KeyNotFoundError, MLTHFile, SplitPolicy


def build(keys, b=5, bp=8, policy=None, pick="balanced"):
    f = MLTHFile(
        bucket_capacity=b, page_capacity=bp, policy=policy, split_node_pick=pick
    )
    for i, k in enumerate(keys):
        f.insert(k, i)
    return f


class TestBasicOperation:
    def test_crud(self):
        f = MLTHFile(bucket_capacity=4, page_capacity=8)
        f.insert("hello", 1)
        assert f.get("hello") == 1
        assert "hello" in f
        assert "nope" not in f
        with pytest.raises(DuplicateKeyError):
            f.insert("hello")
        assert f.delete("hello") == 1
        with pytest.raises(KeyNotFoundError):
            f.get("hello")

    def test_everything_retrievable(self, small_keys):
        f = build(small_keys)
        f.check()
        for i, k in enumerate(small_keys):
            assert f.get(k) == i

    def test_items_sorted(self, small_keys):
        f = build(small_keys)
        assert [k for k, _ in f.items()] == sorted(small_keys)

    def test_range_items(self, small_keys):
        f = build(small_keys)
        s = sorted(small_keys)
        assert [k for k, _ in f.range_items(s[20], s[120])] == s[20:121]
        assert [k for k, _ in f.range_items(None, s[10])] == s[:11]
        assert [k for k, _ in f.range_items(s[280], None)] == s[280:]

    def test_validation_constraints(self):
        with pytest.raises(CapacityError):
            MLTHFile(bucket_capacity=1)
        with pytest.raises(CapacityError):
            MLTHFile(page_capacity=2)
        with pytest.raises(CapacityError):
            MLTHFile(policy=SplitPolicy(merge="siblings"))
        with pytest.raises(CapacityError):
            MLTHFile(policy=SplitPolicy.thcl_redistributing())
        MLTHFile(policy=SplitPolicy.thcl())  # guaranteed merges: allowed


class TestPaging:
    def test_levels_grow_with_file(self, generator):
        f = MLTHFile(bucket_capacity=4, page_capacity=6)
        keys = generator.uniform(400)
        levels_seen = set()
        for k in keys:
            f.insert(k)
            levels_seen.add(f.levels())
        assert 1 in levels_seen and f.levels() >= 3
        f.check()

    def test_page_capacity_respected(self, small_keys):
        f = build(small_keys, bp=8)
        for pid in f._all_page_ids():
            page = f.page_disk.peek(pid)
            if pid != f.root_id:
                assert page.cell_count <= 8

    def test_flat_model_matches_single_level_file(self, small_keys):
        # MLTH and THFile with identical policy produce identical
        # key->bucket maps (page splits never change the mapping).
        from repro import THFile

        flat = THFile(bucket_capacity=5)
        for k in small_keys:
            flat.insert(k)
        paged = build(small_keys, b=5, bp=8)
        flat_model = flat.trie.to_model()
        paged_model = paged.flat_model()
        assert flat_model.boundaries == paged_model.boundaries
        assert flat_model.children == paged_model.children

    def test_two_accesses_claim(self, generator):
        # With the root pinned and two page levels: 2 page reads + 1
        # bucket read per search.
        keys = generator.uniform(800)
        f = build(keys, b=4, bp=16)
        assert f.levels() == 3  # root + 1 intermediate + file level
        for key in keys[:20]:
            pages, buckets = f.search_cost(key)
            assert pages == 2
            assert buckets == 1

    def test_unpinned_root_costs_one_more(self, generator):
        keys = generator.uniform(200)
        f = MLTHFile(bucket_capacity=5, page_capacity=16, pin_root=False)
        for k in keys:
            f.insert(k)
        pages, buckets = f.search_cost(keys[0])
        assert pages == f.levels()

    def test_split_node_conditions(self, small_keys):
        # Every page's span admits its own root: the chosen split node's
        # logical parent is outside the page (condition (ii)).
        f = build(small_keys, bp=8)
        for pid in f._all_page_ids():
            page = f.page_disk.peek(pid)
            if page.cell_count >= 2:
                candidates = page.split_candidates()
                assert candidates
                span = set(page.boundaries)
                for i in candidates:
                    s = page.boundaries[i]
                    assert len(s) == 1 or s[:-1] not in span

    def test_ordered_insertions_with_shifted_split_node(self, sorted_keys):
        balanced = build(sorted_keys, pick="balanced")
        shifted = build(sorted_keys, pick="last")
        balanced.check()
        shifted.check()
        # The shift may only help page load for ascending insertions.
        assert shifted.page_load_factor() >= balanced.page_load_factor() - 0.02


class TestPolicies:
    def test_thcl_policy(self, sorted_keys):
        policy = SplitPolicy.thcl_ascending(0).with_(merge="none")
        f = build(sorted_keys, b=10, bp=16, policy=policy, pick="last")
        f.check()
        assert f.load_factor() > 0.95

    def test_descending_compact(self, sorted_keys):
        policy = SplitPolicy.thcl_descending(0).with_(merge="none")
        f = build(list(reversed(sorted_keys)), b=10, bp=16, policy=policy, pick="first")
        f.check()
        assert f.load_factor() > 0.95

    def test_basic_nil_allocation(self):
        f = MLTHFile(bucket_capacity=4, page_capacity=8,
                     policy=SplitPolicy(split_position=-1, merge="none"))
        for k in ("oaaa", "obbb", "osza", "oszc", "oszh"):
            f.insert(k)
        nil_before = f.stats.nil_allocations
        f.insert("ota")
        assert f.stats.nil_allocations == nil_before + 1
        f.check()

    def test_deletes_only_records(self, small_keys):
        f = build(small_keys)
        pages = f.page_count()
        for k in sorted(small_keys)[:150]:
            f.delete(k)
        assert f.page_count() == pages  # no page merging, per scope
        f.check()
        assert len(f) == len(small_keys) - 150

    def test_guaranteed_floor_under_deletes(self, small_keys):
        policy = SplitPolicy.thcl()
        f = MLTHFile(bucket_capacity=6, page_capacity=10, policy=policy)
        for i, k in enumerate(small_keys):
            f.insert(k, i)
        import random

        victims = list(small_keys)
        random.Random(4).shuffle(victims)
        for i, k in enumerate(victims[:240]):
            f.delete(k)
            if i % 40 == 0:
                f.check()
        f.check()
        sizes = [len(f.store.peek(a)) for a in f.store.live_addresses()]
        if len(sizes) > 1:
            assert min(sizes) >= 3
        remaining = sorted(set(small_keys) - set(victims[:240]))
        assert [k for k, _ in f.items()] == remaining

    def test_guaranteed_ordered_deletes(self, small_keys):
        policy = SplitPolicy.thcl()
        f = MLTHFile(bucket_capacity=6, page_capacity=10, policy=policy)
        for k in small_keys:
            f.insert(k)
        for k in sorted(small_keys)[:250]:  # ascending deletions
            f.delete(k)
        f.check()
        sizes = [len(f.store.peek(a)) for a in f.store.live_addresses()]
        if len(sizes) > 1:
            assert min(sizes) >= 3


class TestMetrics:
    def test_trie_size_counts_all_cells(self, small_keys):
        from repro import THFile

        flat = THFile(bucket_capacity=5)
        for k in small_keys:
            flat.insert(k)
        paged = build(small_keys, b=5, bp=8)
        assert paged.trie_size() == flat.trie_size()

    def test_page_load_between_zero_and_one(self, small_keys):
        f = build(small_keys, bp=8)
        assert 0.2 < f.page_load_factor() <= 1.0

    def test_bucket_load_similar_to_flat(self, small_keys):
        from repro import THFile

        flat = THFile(bucket_capacity=5)
        for k in small_keys:
            flat.insert(k)
        paged = build(small_keys, b=5, bp=8)
        assert paged.load_factor() == pytest.approx(flat.load_factor())
