"""The typed event taxonomy of the tracing bus.

Every event is a :class:`Event`: a sequence number, a name drawn from
the taxonomy below, the id of the innermost active span (or ``None``
when the access happened outside any operation), and a flat dict of
fields. Events are cheap value objects; sinks decide what to do with
them (write JSONL, fold into metrics, collect in a list).

Structural events
-----------------
``split``
    A data bucket split (fields: ``kind`` — ``"basic"``, ``"thcl"``,
    ``"nil-alloc"`` or ``"deferred"`` —, ``bucket``, ``new_bucket``,
    ``moved``, ``stayed``, ``nodes_added``).
``merge``
    Two buckets (or B-tree nodes) merged after a deletion.
``redistribute``
    An overflow resolved by moving records into a neighbour instead of
    splitting.
``overflow``
    A record spilled into an overflow chain (deferred splitting).
``page_split``
    A trie page (MLTH) or branch node (B+-tree) split.
``rebalance``
    A post-delete borrow from a sibling (fields: ``kind``).

Distributed events (:mod:`repro.distributed`)
---------------------------------------------
``forward``
    A server forwarded a misaddressed operation to its owner (fields:
    ``src``, ``dst``, ``op``).
``shard_split``
    A shard scaled out (fields: ``shard``, ``new_shard``, ``boundary``,
    ``moved``, ``stayed``).
``scan_leg``
    One region's worth of a distributed range scan was served (fields:
    ``shard``, ``records``).

Fault-tolerance events (:mod:`repro.distributed.faults`)
--------------------------------------------------------
``net_fault``
    The fault-injecting fabric fired one scheduled fault (fields:
    ``kind`` — ``"drop"``, ``"duplicate"``, ``"delay"``, ``"timeout"``,
    ``"crash"`` or ``"server_down"`` —, ``edge``, ``shard``).
``server_crash``
    A shard server went down, losing volatile state when durable
    (fields: ``shard``, ``durable``).
``server_recover``
    A crashed server finished recovery and rejoined the cluster
    (fields: ``shard``, ``replayed`` — WAL records replayed).
``op_retry``
    A client re-sent an operation after a transient fault (fields:
    ``client``, ``op``, ``attempt``, ``reason`` — the retryable error
    class name).
``dedup_hit``
    An owning server short-circuited a redelivered mutation to its
    recorded result instead of re-executing it (fields: ``shard``,
    ``rid``) — the annotated evidence of the exactly-once protocol in
    a causal trace.

Durability events (:mod:`repro.storage`)
----------------------------------------
``recovery_done``
    A durable session finished recovering (fields: ``engine``,
    ``replayed``, ``torn_tail``, ``fallback``).
``checkpoint``
    A checkpoint landed (fields: ``id``, ``full``, ``buckets``,
    ``lsn``, ``chain``).
``wal_append`` / ``wal_fsync``
    One record appended to / one commit barrier on the write-ahead log.

Device events
-------------
``disk_read`` / ``disk_write``
    One block access that actually reached a device (fields:
    ``device``, ``seconds`` when a latency model is attached).
``buffer_hit`` / ``buffer_miss``
    A buffer-pool read served from / missing the cache.
``disk_fault``
    The fault-injecting disk fired one scheduled device fault.

Span events
-----------
``span_end``
    Emitted when an operation span closes (fields: ``op``, ``span_id``,
    ``parent``, ``trace``, ``start_seq``, ``reads``, ``writes``,
    ``accesses``, ``seconds`` — simulated device time — and ``elapsed``
    — wall-clock seconds). ``trace``/``span_id``/``parent`` are what
    :mod:`repro.obs.causal` reconstructs causal trees from.
``trace_end``
    Emitted once on deactivation with the unattributed access totals,
    so a JSONL trace is self-contained for reconciliation.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["EVENT_NAMES", "Event"]

#: The closed set of event names the instrumented code emits.
EVENT_NAMES = frozenset(
    {
        "split",
        "merge",
        "redistribute",
        "overflow",
        "page_split",
        "rebalance",
        "disk_read",
        "disk_write",
        "buffer_hit",
        "buffer_miss",
        "forward",
        "shard_split",
        "scan_leg",
        "net_fault",
        "server_crash",
        "server_recover",
        "op_retry",
        "dedup_hit",
        "recovery_done",
        "checkpoint",
        "wal_append",
        "wal_fsync",
        "disk_fault",
        "span_end",
        "trace_end",
    }
)


class Event:
    """One traced occurrence: ``(seq, name, span, fields)``."""

    __slots__ = ("seq", "name", "span", "fields")

    def __init__(
        self, seq: int, name: str, span: Optional[int], fields: dict[str, object]
    ):
        self.seq = seq
        self.name = name
        self.span = span
        self.fields = fields

    def to_dict(self) -> dict[str, object]:
        """Flat dict form (the JSONL record)."""
        out: dict[str, object] = {"seq": self.seq, "event": self.name}
        if self.span is not None:
            out["span"] = self.span
        out.update(self.fields)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Event({self.seq}, {self.name!r}, span={self.span}, {self.fields!r})"
