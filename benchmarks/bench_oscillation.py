"""Section 4.5: the load-factor oscillation under redistribution.

The paper: the ~87% figure "is however in practice only a peak result
... buckets under insertions have tendency to fill up almost
simultaneously to a high value and then to split, also almost
simultaneously ... This phenomenon lowers the load almost to 50%".
Expected shape: the redistribution run's load series peaks well above
its mean and dips far below it; the plain run oscillates much less.
"""

from conftest import once

from repro import SplitPolicy, THFile
from repro.analysis.simulator import load_series
from repro.workloads import KeyGenerator


def run():
    keys = KeyGenerator(42).uniform(5000)
    rows = []
    for label, policy in (
        ("plain THCL", SplitPolicy.thcl_guaranteed_half()),
        ("with redistribution", SplitPolicy.thcl_redistributing()),
    ):
        series = load_series(THFile(20, policy), keys, every=50)
        loads = [r["load_factor"] for r in series if r["inserted"] > 500]
        rows.append(
            {
                "policy": label,
                "mean%": round(100 * sum(loads) / len(loads), 1),
                "peak%": round(100 * max(loads), 1),
                "trough%": round(100 * min(loads), 1),
                "swing": round(100 * (max(loads) - min(loads)), 1),
            }
        )
    return rows


def test_redistribution_oscillation(benchmark, report):
    rows = once(benchmark, run)
    report(
        "oscillation",
        rows,
        "Section 4.5 - redistribution load oscillation (b = 20)",
    )
    plain, redis = rows
    assert redis["peak%"] >= 85              # the ~87% peak
    assert redis["peak%"] - redis["trough%"] >= 5   # it oscillates
    assert redis["mean%"] > plain["mean%"] + 10     # and sits far higher
