"""Unit tests for key/prefix arithmetic and the split string (A2 step 1)."""

import pytest

from repro import LOWERCASE
from repro.core.keys import (
    common_prefix_length,
    compare_prefix,
    prefix,
    prefix_gt,
    prefix_le,
    prefix_lt,
    split_string,
)

A = LOWERCASE


class TestPrefix:
    def test_paper_notation(self):
        # (c)_l is the (l+1)-digit prefix.
        assert prefix("have", 0, A) == "h"
        assert prefix("have", 1, A) == "ha"
        assert prefix("have", 3, A) == "have"

    def test_negative_is_empty(self):
        assert prefix("have", -1, A) == ""
        assert prefix("have", -5, A) == ""

    def test_pads_past_the_end_with_spaces(self):
        assert prefix("ha", 2, A) == "ha "
        assert prefix("ha", 4, A) == "ha   "

    def test_zero_on_empty_key(self):
        assert prefix("", 0, A) == " "


class TestComparisons:
    def test_compare_prefix_three_way(self):
        assert compare_prefix("hat", "ha", A) == 0  # 'ha' <= 'ha'
        assert compare_prefix("he", "ha", A) == 1
        assert compare_prefix("g", "ha", A) == -1

    def test_short_key_pads_low(self):
        # 'h' reads as 'h ' against the 2-digit bound 'ha'.
        assert prefix_le("h", "ha", A)
        assert prefix_lt("h", "ha", A)

    def test_exact_prefix_goes_left(self):
        # A key equal to the bound's padding goes left (<=).
        assert prefix_le("ha", "ha", A)
        assert not prefix_gt("ha", "ha", A)

    def test_extension_goes_right(self):
        assert prefix_gt("hat", "ha ", A)

    def test_space_digit_bound(self):
        # Bound 'ha ' (with a space digit) separates 'ha' from 'hat'.
        assert prefix_le("ha", "ha ", A)
        assert prefix_gt("hat", "ha ", A)

    def test_monotone_in_bound(self):
        # If a key is left of a lower bound it is left of a higher one.
        for key in ("abc", "m", "zzz"):
            left_of_a = prefix_le(key, "f", A)
            left_of_b = prefix_le(key, "t", A)
            assert not left_of_a or left_of_b


class TestCommonPrefixLength:
    def test_basics(self):
        assert common_prefix_length("have", "hat") == 2
        assert common_prefix_length("have", "have") == 4
        assert common_prefix_length("a", "b") == 0

    def test_prefix_relation(self):
        assert common_prefix_length("ha", "have") == 2
        assert common_prefix_length("", "have") == 0


class TestSplitString:
    def test_paper_fig3_example(self):
        # Splitting around 'have' with last key 'he': shortest prefix of
        # 'have' below the same-length prefix of 'he' is 'ha'.
        assert split_string("have", "he", A) == "ha"

    def test_single_digit(self):
        assert split_string("apple", "banana", A) == "a"

    def test_adjacent_keys_need_long_strings(self):
        assert split_string("osz", "oszh", A) == "osz "
        assert split_string("abcde", "abcdf", A) == "abcde"

    def test_prefix_pair_gets_space_digit(self):
        # 'ha' vs 'hat': the separating string is 'ha' + space.
        assert split_string("ha", "hat", A) == "ha "

    def test_requires_strict_order(self):
        with pytest.raises(ValueError):
            split_string("b", "a", A)
        with pytest.raises(ValueError):
            split_string("a", "a", A)

    def test_result_separates_the_keys(self):
        cases = [("have", "he"), ("osz", "oszh"), ("a", "b"), ("abc", "abd")]
        for low, high in cases:
            s = split_string(low, high, A)
            assert prefix_le(low, s, A)
            assert prefix_gt(high, s, A)

    def test_interior_space_digits(self):
        # Regression: 'ab' vs 'ab b' agree through position 2 only when
        # the padding digit is compared; the separator is 'ab  '.
        s = split_string("ab", "ab b", A)
        assert s == "ab  "
        assert prefix_le("ab", s, A)
        assert prefix_gt("ab b", s, A)
        assert prefix_gt("ab a", s, A)

    def test_result_is_shortest(self):
        s = split_string("karma", "karpa", A)
        assert s == "karm"
        # Any shorter prefix fails to separate.
        for l in range(len(s) - 1):
            shorter = prefix("karma", l, A)
            assert not (prefix_le("karma", shorter, A) and prefix_gt("karpa", shorter, A))
