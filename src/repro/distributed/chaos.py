"""Chaos harness: randomized fault schedules vs. the differential oracle.

A chaos run drives the same mixed workload at a fault-injected cluster
and a single-node :class:`~repro.core.file.THFile` oracle, operation by
operation. While the :class:`~repro.distributed.faults.FaultPlan` drops,
duplicates and delays messages and crash-restarts durable servers mid
workload, every operation's *observed outcome* (value or exception
type) must match the oracle exactly — the retry + dedup protocol makes
the faults invisible. When the schedule heals, the surviving cluster
must hold a byte-identical record set, pass every structural invariant,
and show **zero** double-applied mutations in the router's audit trail.

:func:`run_chaos` is the single-run entry (the chaos tests and the
Hypothesis stateful suite call it with many seeds);
:func:`chaos_table` sweeps fault rates for the CLI and the chaos
benchmark.
"""

from __future__ import annotations

import random
from typing import Optional

from ..check import maybe_audit
from ..core.errors import DuplicateKeyError, KeyNotFoundError
from ..core.file import THFile
from ..obs.export import JsonlTraceWriter
from ..obs.flight import FLIGHT
from ..obs.tracer import TRACER
from .coordinator import Cluster, ShardPolicy
from .errors import ConfigurationError
from .faults import FaultPlan, FaultyRouter, RetryPolicy
from .replication import ReplicationPolicy

__all__ = ["ChaosReport", "run_chaos", "chaos_table"]

_WORKLOAD_ALPHABET = "abcdefghijklmnopqrstuvwxyz"


class ChaosReport:
    """The outcome and audit counters of one chaos run."""

    __slots__ = (
        "ops",
        "seed",
        "shards",
        "records",
        "faults",
        "retries",
        "dedup_hits",
        "crashes",
        "recoveries",
        "duplicate_applies",
        "messages",
        "forwards",
        "clock",
        "converged",
        "kills",
        "failovers",
        "migrations",
        "failover_mttr",
    )

    def __init__(self) -> None:
        self.ops = 0
        self.seed = 0
        self.shards = 0
        self.records = 0
        self.faults = 0
        self.retries = 0
        self.dedup_hits = 0
        self.crashes = 0
        self.recoveries = 0
        self.duplicate_applies = 0
        self.messages = 0
        self.forwards = 0
        self.clock = 0.0
        self.converged = False
        #: Forced permanent primary kills (each must end in a failover).
        self.kills = 0
        self.failovers = 0
        self.migrations = 0
        #: Mean sim-seconds from a forced kill to its backup's promotion.
        self.failover_mttr = 0.0

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChaosReport(ops={self.ops}, faults={self.faults}, "
            f"retries={self.retries}, dedup_hits={self.dedup_hits}, "
            f"crashes={self.crashes}, dup_applies={self.duplicate_applies}, "
            f"converged={self.converged})"
        )


def _counter_sum(registry, name: str) -> float:
    """Sum a counter family across every label set."""
    total = 0.0
    for inst in registry.instruments():
        if inst.name == name and hasattr(inst, "value") and not hasattr(inst, "set"):
            total += inst.value
    return total


def _expect(observed, expected, context: str) -> None:
    if observed != expected:
        raise AssertionError(
            f"chaos divergence at {context}: cluster said {observed!r}, "
            f"oracle said {expected!r}"
        )


def _mutate_both(action, cluster_call, oracle_call, context: str) -> None:
    """Run one mutation on both sides; outcomes (value/error) must match."""
    expected_error: Optional[type] = None
    expected_value = None
    try:
        expected_value = oracle_call()
    except (DuplicateKeyError, KeyNotFoundError) as exc:
        expected_error = type(exc)
    try:
        observed = cluster_call()
    except (DuplicateKeyError, KeyNotFoundError) as exc:
        if expected_error is not type(exc):
            raise AssertionError(
                f"chaos divergence at {context}: cluster raised "
                f"{type(exc).__name__}, oracle "
                f"{'raised ' + expected_error.__name__ if expected_error else 'succeeded'}"
            ) from exc
        return
    if expected_error is not None:
        raise AssertionError(
            f"chaos divergence at {context}: cluster succeeded, oracle "
            f"raised {expected_error.__name__}"
        )
    if action == "delete":
        _expect(observed, expected_value, context)


def run_chaos(
    ops: int = 5000,
    shards: int = 4,
    seed: int = 0,
    durable: bool = True,
    drop: float = 0.01,
    duplicate: float = 0.01,
    delay: float = 0.01,
    crash_cycles: int = 3,
    shard_capacity: int = 512,
    bucket_capacity: int = 8,
    retry: Optional[RetryPolicy] = None,
    scan_every: int = 0,
    trace_path: Optional[str] = None,
    trie_backend: str = "cells",
    transport: str = "sim",
    replication: Optional[object] = None,
    kill_cycles: int = 0,
    migrate_cycles: int = 0,
) -> ChaosReport:
    """One differential chaos run; raises ``AssertionError`` on divergence.

    Builds an ``shards``-way cluster under a seeded
    :class:`~repro.distributed.faults.FaultPlan`, drives ``ops`` mixed
    operations (insert / lookup / delete / put / range scan) against it
    and a single-node oracle, force-crashes a random live server
    ``crash_cycles`` times along the way, then heals the plan, restarts
    everything and verifies byte-identical convergence plus the
    exactly-once audit. The default retry budget rides out every
    injected outage, so the workload itself never observes a fault.

    ``scan_every > 0`` interleaves a full range scan every that many
    operations (scans re-read regions under retries, so they are kept
    off the default path where ``ops`` is large).

    ``trace_path`` writes the run's full JSONL trace there (activating
    the global tracer for the duration, unless it is already active) —
    the file ``trie-hashing trace report`` reconstructs causal trees
    from. On divergence the flight recorder dumps its ring before the
    ``AssertionError`` surfaces (see :mod:`repro.obs.flight`).

    ``trie_backend`` selects the shard files' trie representation; the
    oracle always stays on the standard cells, so a compact-backed run
    is *also* a cells-vs-compact differential under faults.

    ``transport="uds"`` runs the *same* schedule over a live asyncio
    server on a Unix-domain socket: the cluster sits behind a
    :class:`~repro.serving.server.ServingServer` and the plan is
    replayed client-side by a
    :class:`~repro.serving.faults.FaultyRemoteTransport`, so every op,
    fault and crash traverses real frames and the codec. Tracing is not
    supported there (server-side events would interleave from another
    thread).

    ``replication`` (a mode string or a
    :class:`~repro.distributed.replication.ReplicationPolicy`) runs
    every primary with a WAL-shipped backup. ``kill_cycles`` then adds
    *permanent* primary kills, evenly spaced through the workload: the
    dead primary is never restarted — the failure detector must promote
    its backup, and the differential plus the exactly-once audit must
    hold straight through the promotion. ``migrate_cycles`` starts that
    many live shard migrations under load (snapshot chunks interleaved
    with workload ops, WAL catch-up at the cutover barrier); they too
    must be invisible to the oracle.
    """
    if transport not in ("sim", "uds"):
        raise ConfigurationError(
            f"transport must be 'sim' or 'uds', not {transport!r}"
        )
    if isinstance(replication, str):
        # Promotion must out-wait any transient crash-restart cycle the
        # plan schedules (downtimes cap at 0.25 sim-seconds), so routine
        # outages recover in place and only true kills depose a primary.
        replication = ReplicationPolicy(
            mode=replication, heartbeat_interval=0.02, failover_after=0.3
        )
    if kill_cycles and replication is None:
        raise ConfigurationError(
            "kill_cycles needs replication: a killed primary is never "
            "restarted, so only a promoted backup can keep its region alive"
        )
    if transport == "uds" and trace_path is not None:
        raise ConfigurationError(
            "trace_path is not supported over the uds transport: the "
            "server loop runs on another thread and its events would "
            "interleave with the client's"
        )
    writer: Optional[JsonlTraceWriter] = None
    if trace_path is not None and not TRACER.enabled:
        writer = JsonlTraceWriter(trace_path)
        TRACER.activate([writer])
    try:
        return _run_chaos(
            ops=ops,
            shards=shards,
            seed=seed,
            durable=durable,
            drop=drop,
            duplicate=duplicate,
            delay=delay,
            crash_cycles=crash_cycles,
            shard_capacity=shard_capacity,
            bucket_capacity=bucket_capacity,
            retry=retry,
            scan_every=scan_every,
            trie_backend=trie_backend,
            transport=transport,
            replication=replication,
            kill_cycles=kill_cycles,
            migrate_cycles=migrate_cycles,
        )
    except AssertionError:
        # The differential oracle diverged: capture the last window of
        # events for offline forensics before the failure surfaces.
        FLIGHT.dump("chaos-divergence")
        raise
    finally:
        if writer is not None:
            TRACER.deactivate()


def _run_chaos(
    ops: int,
    shards: int,
    seed: int,
    durable: bool,
    drop: float,
    duplicate: float,
    delay: float,
    crash_cycles: int,
    shard_capacity: int,
    bucket_capacity: int,
    retry: Optional[RetryPolicy],
    scan_every: int,
    trie_backend: str,
    transport: str,
    replication: Optional[ReplicationPolicy],
    kill_cycles: int,
    migrate_cycles: int,
) -> ChaosReport:
    plan = FaultPlan(
        seed=seed,
        drop=drop,
        duplicate=duplicate,
        delay=delay,
        delay_seconds=(0.001, 0.05),
        downtime=(0.05, 0.25),
    )
    if retry is None:
        # Generous against the plan above: the backoff series out-waits
        # the longest downtime several times over, so the differential
        # never sees ShardUnavailableError (which would make "did it
        # apply?" ambiguous and break the oracle mirroring).
        retry = RetryPolicy(max_retries=12, base_delay=0.005, max_delay=0.5)
    fixture = None
    if transport == "uds":
        # A real asyncio server on a Unix socket: the cluster keeps the
        # plain in-process router (the server executes ops locally) and
        # the plan is replayed client-side over live frames. Sharing
        # the cluster's registry puts client retry counters and server
        # dedup/crash counters in the one place the report reads.
        from ..serving import ServingFixture

        cluster = Cluster(
            shards=shards,
            bucket_capacity=bucket_capacity,
            shard_policy=ShardPolicy(shard_capacity=shard_capacity),
            durable=durable,
            retry=retry,
            trie_backend=trie_backend,
            replication=replication,
        )
        fixture = ServingFixture(cluster)
        client, fabric = fixture.open_file(
            plan=plan, retry=retry, registry=cluster.registry
        )
        # The failure detector lives server-side; the client's simulated
        # clock drives it through ``tick`` controls (see faults module).
        fabric.replicated = replication is not None
    else:
        cluster = Cluster(
            shards=shards,
            bucket_capacity=bucket_capacity,
            shard_policy=ShardPolicy(shard_capacity=shard_capacity),
            durable=durable,
            faults=plan,
            retry=retry,
            trie_backend=trie_backend,
            replication=replication,
        )
        fabric = cluster.router
        if not isinstance(fabric, FaultyRouter):
            raise AssertionError("chaos needs the fault-injecting router")
        client = cluster.client()
    oracle = THFile(bucket_capacity=bucket_capacity)
    try:
        return _drive_chaos(
            plan=plan,
            cluster=cluster,
            fabric=fabric,
            client=client,
            oracle=oracle,
            ops=ops,
            seed=seed,
            crash_cycles=crash_cycles,
            scan_every=scan_every,
            kill_cycles=kill_cycles,
            migrate_cycles=migrate_cycles,
        )
    finally:
        if fixture is not None:
            fixture.close()


def _kill_candidates(coordinator) -> list[int]:
    """Primaries that can be killed *and* recovered by promotion.

    A viable victim is up, not the source of an in-flight migration
    (killing it would strand the move), and has a live, in-sync backup
    — the failure detector refuses to promote a degraded or down
    backup, so killing such a primary would lose the region for good.
    """
    out = []
    for sid, srv in coordinator.servers.items():
        if srv.down or sid in coordinator.migrations:
            continue
        backup = coordinator.replicas.get(sid)
        rep = srv.replicator
        if backup is None or backup.down or rep is None or rep.degraded:
            continue
        out.append(sid)
    return sorted(out)


def _advance_migrations(coordinator) -> int:
    """One chunk of progress on every in-flight migration.

    Finishes (cuts over) a move whose snapshot is fully copied, unless
    its source is transiently down — the barrier would abort it, so the
    finish waits for the restart instead. Returns completed cutovers.
    """
    finished = 0
    for src in list(coordinator.migrations):
        if coordinator.step_migration(src):
            continue
        source = coordinator.servers.get(src)
        if source is None or source.down:
            continue
        if coordinator.finish_migration(src) is not None:
            finished += 1
    return finished


def _drive_chaos(
    plan: FaultPlan,
    cluster: Cluster,
    fabric,
    client,
    oracle: THFile,
    ops: int,
    seed: int,
    crash_cycles: int,
    scan_every: int,
    kill_cycles: int = 0,
    migrate_cycles: int = 0,
) -> ChaosReport:

    rng = random.Random(seed)
    crash_rng = random.Random(seed ^ 0xC4A05)
    kill_rng = random.Random(seed ^ 0x51AB5)
    coordinator = cluster.coordinator
    crash_at = {
        (i + 1) * ops // (crash_cycles + 1) for i in range(crash_cycles)
    }
    # Kills sit at odd half-points so they interleave with the transient
    # crash schedule instead of landing on the same steps; migrations
    # start early enough that every one can finish under load.
    kill_at = (
        {(2 * i + 1) * ops // (2 * kill_cycles) for i in range(kill_cycles)}
        if kill_cycles
        else set()
    )
    migrate_at = (
        {(i + 1) * ops // (migrate_cycles + 2) for i in range(migrate_cycles)}
        if migrate_cycles
        else set()
    )
    kills: list[tuple[int, float]] = []
    migrations_finished = 0
    known: list[str] = []
    for step in range(ops):
        if step in crash_at:
            live = [
                s for s, srv in cluster.coordinator.servers.items()
                if not srv.down
            ]
            if live:
                lo, hi = plan.downtime
                fabric.crash_server(
                    crash_rng.choice(live),
                    downtime=lo + (hi - lo) * crash_rng.random(),
                )
        if step in kill_at:
            viable = _kill_candidates(coordinator)
            if viable:
                victim = kill_rng.choice(viable)
                fabric.crash_server(victim, downtime=None)
                kills.append((victim, fabric.now))
        if step in migrate_at:
            movable = sorted(
                s for s, srv in coordinator.servers.items()
                if not srv.down and s not in coordinator.migrations
            )
            if movable:
                coordinator.start_migration(
                    kill_rng.choice(movable), chunk_size=48
                )
        if coordinator.migrations:
            migrations_finished += _advance_migrations(coordinator)
        action = rng.random()
        key = "".join(
            rng.choice(_WORKLOAD_ALPHABET)
            for _ in range(rng.randint(1, 8))
        )
        context = f"op {step} ({key!r})"
        mutated = True
        if action < 0.45:
            _mutate_both(
                "insert",
                lambda key=key: client.insert(key, key.upper()),
                lambda key=key: oracle.insert(key, key.upper()),
                context,
            )
            if oracle.contains(key):
                known.append(key)
        elif action < 0.60:
            mutated = False
            probe = rng.choice(known) if known and rng.random() < 0.7 else key
            _expect(client.contains(probe), oracle.contains(probe), context)
            if oracle.contains(probe):
                _expect(client.get(probe), oracle.get(probe), context)
        elif action < 0.75:
            probe = rng.choice(known) if known and rng.random() < 0.8 else key
            _mutate_both(
                "delete",
                lambda probe=probe: client.delete(probe),
                lambda probe=probe: oracle.delete(probe),
                context,
            )
        elif action < 0.90 or not scan_every:
            _mutate_both(
                "put",
                lambda key=key: client.put(key, "v2"),
                lambda key=key: oracle.put(key, "v2"),
                context,
            )
            known.append(key)
        else:
            mutated = False
        if mutated:
            # Paranoid mode (REPRO_PARANOID=1): re-audit both sides after
            # every mutation so a corrupting op is caught where it
            # happened, not at the end-of-run convergence check.
            maybe_audit(oracle, context)
            maybe_audit(cluster, context)
        if scan_every and step and step % scan_every == 0:
            lo_key = min(key, "m")
            _expect(
                list(client.range_items(lo_key, None)),
                list(oracle.range_items(lo_key, None))
                if hasattr(oracle, "range_items")
                else [(k, v) for k, v in oracle.items() if k >= lo_key],
                context,
            )

    # Drain in-flight migrations: keep stepping (and riding out any
    # transient source outage on the clock) until every move cut over.
    for _ in range(400):
        if not coordinator.migrations:
            break
        migrations_finished += _advance_migrations(coordinator)
        if coordinator.migrations:
            fabric.sleep(0.02)

    # Every forced kill must end in a promotion, not a restart: nudge
    # the clock until the failure detector has deposed each dead
    # primary (its id leaves ``coordinator.servers`` at failover).
    for _ in range(400):
        if not any(
            sid in coordinator.servers and coordinator.servers[sid].down
            for sid, _at in kills
        ):
            break
        fabric.sleep(0.02)
    if kills and len(coordinator.failover_log) < len(kills):
        raise AssertionError(
            f"only {len(coordinator.failover_log)} of {len(kills)} killed "
            f"primaries were failed over"
        )

    # Quiesce: stop injecting, bring every server back, and check that
    # the cluster converged to exactly the oracle's state.
    plan.heal()
    fabric.restore_all()
    cluster.check()
    _expect(list(client.items()), list(oracle.items()), "final scan")

    report = ChaosReport()
    report.ops = ops
    report.seed = seed
    report.shards = cluster.shard_count()
    report.records = len(oracle)
    registry = cluster.registry
    report.faults = fabric.faults_injected
    report.retries = int(_counter_sum(registry, "dist_retries_total"))
    report.dedup_hits = int(_counter_sum(registry, "dist_dedup_hits_total"))
    report.crashes = int(_counter_sum(registry, "dist_server_crashes_total"))
    report.recoveries = int(
        _counter_sum(registry, "dist_server_recoveries_total")
    )
    report.duplicate_applies = fabric.duplicate_applies()
    report.messages = fabric.messages
    report.kills = len(kills)
    report.failovers = len(coordinator.failover_log)
    report.migrations = migrations_finished
    lag = [
        entry["at"] - killed_at
        for entry in coordinator.failover_log
        for sid, killed_at in kills
        if entry["shard"] == sid
    ]
    report.failover_mttr = round(sum(lag) / len(lag), 6) if lag else 0.0
    # Forwards happen server-side either way; over the wire the client
    # transport never sees them, so read the cluster's own router.
    report.forwards = getattr(fabric, "forwards", cluster.router.forwards)
    report.clock = fabric.now
    report.converged = True
    if report.duplicate_applies:
        raise AssertionError(
            f"{report.duplicate_applies} request ids applied more than once"
        )
    return report


def chaos_table(
    count: int = 2000,
    seed: int = 0,
    rates: tuple = (0.0, 0.01, 0.05),
    shards: int = 4,
) -> list[dict]:
    """Throughput and audit counters across a sweep of fault rates.

    One row per rate, applying it to drops, duplicates and delays alike
    (``0.0`` is the fault-free baseline). The ``ops/s`` column is
    simulated-time throughput: operations per simulated second spent in
    delays and backoff, infinite (reported as 0) when the clock never
    moved.
    """
    rows = []
    for rate in rates:
        report = run_chaos(
            ops=count,
            shards=shards,
            seed=seed,
            drop=rate,
            duplicate=rate,
            delay=rate,
            crash_cycles=3 if rate else 0,
        )
        rows.append(
            {
                "fault_rate": rate,
                "ops": report.ops,
                "faults": report.faults,
                "retries": report.retries,
                "dedup_hits": report.dedup_hits,
                "crashes": report.crashes,
                "dup_applies": report.duplicate_applies,
                "shards": report.shards,
                "records": report.records,
                "sim_seconds": round(report.clock, 4),
                "converged": report.converged,
            }
        )
    return rows
