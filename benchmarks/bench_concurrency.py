"""Section 6 / /VID87/: concurrency — TH vs a B-tree.

The paper: "TH may allow for higher degree of concurrency than a
B-tree... One needs then to lock only the leaf A and the variable N".
The simulation replays the same mixed workload (searches + inserts)
through both locking protocols; expected shape: far fewer lock
conflicts and wait ticks for TH at every client count, and higher
throughput as clients grow.
"""

from conftest import once

from repro.analysis import concurrency_table


def test_concurrency(benchmark, report):
    rows = once(
        benchmark,
        lambda: concurrency_table(
            count=2000, operations=1000, client_counts=(1, 4, 16)
        ),
    )
    report(
        "concurrency",
        rows,
        "Concurrency (/VID87/) - lock conflicts, waits and throughput",
    )
    by = {(r["method"], r["clients"]): r for r in rows}
    for clients in (4, 16):
        th = by[("TH", clients)]
        bt = by[("B+-tree", clients)]
        assert th["conflicts"] < bt["conflicts"]
        assert th["wait_ticks"] < bt["wait_ticks"]
        assert th["throughput"] > bt["throughput"]
    # Single-client runs never conflict.
    assert by[("TH", 1)]["conflicts"] == 0
    assert by[("B+-tree", 1)]["conflicts"] == 0
