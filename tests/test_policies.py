"""Unit tests for split policies."""

import pytest

from repro import CapacityError, SplitPolicy


class TestPositions:
    def test_default_middle(self):
        # The paper's INT(b/2 + 1).
        assert SplitPolicy().split_index(4) == 3
        assert SplitPolicy().split_index(10) == 6
        assert SplitPolicy().split_index(21) == 11

    def test_explicit_position(self):
        assert SplitPolicy(split_position=2).split_index(10) == 2

    def test_negative_counts_from_top(self):
        assert SplitPolicy(split_position=-1).split_index(10) == 10
        assert SplitPolicy(split_position=-3).split_index(10) == 8

    def test_fraction(self):
        assert SplitPolicy(split_fraction=0.5).split_index(10) == 5
        assert SplitPolicy(split_fraction=0.4).split_index(10) == 4
        assert SplitPolicy(split_fraction=1.0).split_index(10) == 10

    def test_fraction_and_position_conflict(self):
        with pytest.raises(CapacityError):
            SplitPolicy(split_position=1, split_fraction=0.5)

    def test_out_of_range_position(self):
        with pytest.raises(CapacityError):
            SplitPolicy(split_position=11).split_index(10)
        with pytest.raises(CapacityError):
            SplitPolicy(split_position=-11).split_index(10)

    def test_bounding_default_is_last_key(self):
        assert SplitPolicy().bounding_index(10) == 11

    def test_bounding_offset(self):
        p = SplitPolicy(split_position=5, bounding_offset=1)
        assert p.bounding_index(10) == 6
        p = SplitPolicy(split_position=5, bounding_offset=3)
        assert p.bounding_index(10) == 8

    def test_bounding_clamped_to_last(self):
        p = SplitPolicy(split_position=9, bounding_offset=5)
        assert p.bounding_index(10) == 11

    def test_bounding_offset_must_be_positive(self):
        with pytest.raises(CapacityError):
            SplitPolicy(bounding_offset=0)


class TestValidation:
    def test_redistribution_requires_thcl(self):
        with pytest.raises(CapacityError):
            SplitPolicy(redistribution="both")  # nil_nodes defaults True

    def test_guaranteed_merge_requires_thcl(self):
        with pytest.raises(CapacityError):
            SplitPolicy(merge="guaranteed")

    def test_unknown_enum_values(self):
        with pytest.raises(CapacityError):
            SplitPolicy(redistribution="sometimes", nil_nodes=False)
        with pytest.raises(CapacityError):
            SplitPolicy(merge="lazy")
        with pytest.raises(CapacityError):
            SplitPolicy(
                redistribution="both",
                redistribution_target="mostly",
                nil_nodes=False,
            )

    def test_with_copies(self):
        p = SplitPolicy.thcl()
        q = p.with_(merge="none")
        assert q.merge == "none"
        assert q.nil_nodes == p.nil_nodes
        assert p.merge == "guaranteed"  # original untouched


class TestFactories:
    def test_basic_th(self):
        p = SplitPolicy.basic_th()
        assert p.nil_nodes and p.bounding_offset is None
        assert p.merge == "siblings"

    def test_thcl(self):
        p = SplitPolicy.thcl()
        assert not p.nil_nodes
        assert p.bounding_offset == 1

    def test_thcl_ascending(self):
        # d = b - m: the Fig 10 parameter.
        for b in (10, 20, 50):
            for d in (0, 1, 5):
                p = SplitPolicy.thcl_ascending(d)
                assert p.split_index(b) == b - d

    def test_thcl_descending(self):
        # m = 1; bounding at m + 1 + d: the Fig 11 parameter.
        for d in (0, 1, 5):
            p = SplitPolicy.thcl_descending(d)
            assert p.split_index(20) == 1
            assert p.bounding_index(20) == 2 + d

    def test_negative_d_rejected(self):
        with pytest.raises(CapacityError):
            SplitPolicy.thcl_ascending(-1)
        with pytest.raises(CapacityError):
            SplitPolicy.thcl_descending(-1)

    def test_guaranteed_half_is_deterministic_middle(self):
        p = SplitPolicy.thcl_guaranteed_half()
        assert p.bounding_index(10) == p.split_index(10) + 1

    def test_redistributing(self):
        p = SplitPolicy.thcl_redistributing()
        assert p.redistribution == "both"
        assert p.redistribution_target == "even"
        assert SplitPolicy.thcl_redistributing("compact").redistribution_target == "compact"

    def test_policies_are_frozen(self):
        p = SplitPolicy()
        with pytest.raises(AttributeError):  # dataclasses.FrozenInstanceError
            p.split_position = 3
