"""Redistribution — filling a neighbour before appending a bucket.

Section 4.4 of the paper: instead of always allocating a new bucket, an
overflowing bucket ``O`` may push records into its inorder successor
``S`` (choosing the split key high enough that the spill fits ``S``'s
free room) or pull its lowest records into its predecessor ``P``. THCL's
shared leaves make this possible in a trie — the leaves of the moved
region are simply repointed — and deterministic split control makes the
moved count exact.

Redistribution may even *shrink* the trie: when the cut lands on a
boundary already present (step 3.4), a node can end up pointing at the
same bucket through both edges (Fig 9); the optional
:func:`~repro.core.thcl_split.collapse_equal_leaf_nodes` pass removes
such nodes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .alphabet import Alphabet
from .keys import split_string
from .merge import _neighbor_after, _neighbor_before
from .policies import SplitPolicy
from .thcl_split import insert_boundary
from .trie import SearchResult, Trie

if TYPE_CHECKING:  # runtime cycle: storage imports core
    from ..storage.buckets import BucketStore
    from ..storage.wal import WALWriter

__all__ = ["RedistributionOutcome", "try_redistribute"]

Record = tuple[str, object]


class RedistributionOutcome:
    """What a successful redistribution did."""

    __slots__ = ("direction", "moved", "nodes_added", "leaves_repointed")

    def __init__(self, direction: str, moved: int, nodes_added: int, repointed: int):
        self.direction = direction
        self.moved = moved
        self.nodes_added = nodes_added
        self.leaves_repointed = repointed


def _moved_count(room: int, spill: int, neighbour_load: int, target: str) -> int:
    """How many records to move given the policy's redistribution target.

    ``'compact'`` moves the bare minimum (1 record: the overflowing
    bucket stays 100% full, Fig 9); ``'even'`` balances the pair like a
    B-tree redistribution.
    """
    if target == "compact":
        return 1
    even = max(1, (spill - neighbour_load) // 2)
    return min(room, even)


def try_redistribute(
    trie: Trie,
    store: BucketStore,
    result: SearchResult,
    records: list[Record],
    capacity: int,
    policy: SplitPolicy,
    alphabet: Alphabet,
    journal: Optional[WALWriter] = None,
) -> Optional[RedistributionOutcome]:
    """Attempt redistribution for an overflowing bucket.

    ``records`` is the ordered sequence ``B`` of ``b + 1`` records
    (bucket contents plus the incoming one); ``result`` is the search
    that hit the overflow. On success the records are re-spread over the
    two buckets, the trie is re-cut, and an outcome is returned; on
    failure (no neighbour, or no free room) returns ``None`` and the
    caller falls back to a normal split.
    """
    overflowing = result.bucket
    directions = {
        "successor": ("successor",),
        "predecessor": ("predecessor",),
        "both": ("successor", "predecessor"),
    }[policy.redistribution]

    for direction in directions:
        if direction == "successor":
            neighbour = _neighbor_after(trie, result.trail, overflowing)
        else:
            neighbour = _neighbor_before(trie, result.trail, overflowing)
        if neighbour is None:
            continue
        n_bucket = store.read(neighbour)
        room = capacity - len(n_bucket)
        if room < 1:
            continue
        moved = min(
            room,
            _moved_count(
                room, len(records), len(n_bucket), policy.redistribution_target
            ),
        )
        if direction == "successor":
            cut_at = len(records) - moved  # records[cut_at:] move up to S
        else:
            cut_at = moved  # records[:cut_at] move down to P
        anchor, bound = records[cut_at - 1][0], records[cut_at][0]
        boundary = split_string(anchor, bound, alphabet)
        if direction == "successor":
            insertion = insert_boundary(
                trie,
                anchor,
                boundary,
                overflowing,
                neighbour,
                overflowing,
                journal=journal,
            )
            moving = records[cut_at:]
            staying = records[:cut_at]
        else:
            insertion = insert_boundary(
                trie,
                anchor,
                boundary,
                neighbour,
                overflowing,
                overflowing,
                journal=journal,
            )
            moving = records[:cut_at]
            staying = records[cut_at:]
        n_bucket.extend(moving)
        bucket = store.peek(overflowing)
        bucket.keys[:] = [k for k, _ in staying]
        bucket.values[:] = [v for _, v in staying]
        # Keep the /TOR83/ right-cut headers truthful: the re-cut
        # boundary is the right cut of whichever bucket sits below it.
        if direction == "successor":
            bucket.header_path = boundary
        else:
            n_bucket.header_path = boundary
        store.write(overflowing, bucket)
        store.write(neighbour, n_bucket)
        if journal is not None:
            journal.log_redistribute(direction, boundary, len(moving))
        return RedistributionOutcome(
            direction, len(moving), insertion.nodes_added, insertion.leaves_repointed
        )
    return None
