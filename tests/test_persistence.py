"""Whole-file persistence round trips and corrupted-image handling."""

import io
import struct
import zlib

import pytest

from repro import SplitPolicy, THFile
from repro.core.errors import StorageError
from repro.storage.persistence import dump_bytes, load_bytes, load_file, save_file


def build(keys, policy=None, b=6):
    f = THFile(bucket_capacity=b, policy=policy)
    for k in keys:
        f.insert(k, k[::-1])
    return f


class TestRoundTrip:
    def test_bytes_roundtrip(self, small_keys):
        original = build(small_keys)
        restored = load_bytes(dump_bytes(original))
        restored.check()
        assert len(restored) == len(original)
        assert list(restored.items()) == list(original.items())

    def test_policy_travels(self, sorted_keys):
        original = build(sorted_keys, policy=SplitPolicy.thcl_ascending(2), b=10)
        restored = load_bytes(dump_bytes(original))
        assert restored.policy == original.policy
        assert restored.capacity == 10
        # And the restored file keeps behaving per the policy:
        restored.insert("zzzzzy")
        restored.check()

    def test_path_roundtrip(self, small_keys, tmp_path):
        original = build(small_keys)
        path = str(tmp_path / "file.thcl")
        save_file(original, path)
        restored = load_file(path)
        assert list(restored.keys()) == sorted(small_keys)

    def test_stream_roundtrip(self, small_keys):
        original = build(small_keys)
        buffer = io.BytesIO()
        save_file(original, buffer)
        buffer.seek(0)
        restored = load_file(buffer)
        assert list(restored.keys()) == sorted(small_keys)

    def test_file_with_holes_in_address_space(self, small_keys):
        # Deletions free buckets; recycled address layout must survive.
        original = build(small_keys, policy=SplitPolicy.thcl(), b=4)
        for k in sorted(small_keys)[:150]:
            original.delete(k)
        original.check()
        restored = load_bytes(dump_bytes(original))
        restored.check()
        assert list(restored.items()) == list(original.items())

    def test_restored_file_fully_operational(self, small_keys):
        restored = load_bytes(dump_bytes(build(small_keys)))
        restored.insert("zzzzzz", "tail")
        assert restored.get("zzzzzz") == "tail"
        restored.delete(sorted(small_keys)[0])
        restored.check()

    def test_nil_leaves_survive(self):
        f = THFile(bucket_capacity=4, policy=SplitPolicy(split_position=-1))
        for k in ("oaaa", "obbb", "osza", "oszc", "oszh"):
            f.insert(k, None)
        assert f.nil_leaf_fraction() > 0
        restored = load_bytes(dump_bytes(f))
        restored.check()
        assert restored.nil_leaf_fraction() == f.nil_leaf_fraction()


class TestMLTHRoundTrip:
    def build(self, small_keys, policy=None):
        from repro import MLTHFile

        f = MLTHFile(bucket_capacity=5, page_capacity=8, policy=policy)
        for i, k in enumerate(small_keys):
            f.insert(k, str(i))
        return f

    def test_roundtrip(self, small_keys):
        from repro.storage.persistence import dump_mlth_bytes, load_mlth_bytes

        original = self.build(small_keys)
        restored = load_mlth_bytes(dump_mlth_bytes(original))
        restored.check()
        assert len(restored) == len(original)
        assert list(restored.items()) == list(original.items())
        assert restored.levels() == original.levels()

    def test_restored_searches_and_grows(self, small_keys):
        from repro.storage.persistence import dump_mlth_bytes, load_mlth_bytes

        restored = load_mlth_bytes(dump_mlth_bytes(self.build(small_keys)))
        for k in small_keys[:30]:
            assert k in restored
        restored.insert("zzzzzzy")
        restored.check()

    def test_policy_and_pick_travel(self, sorted_keys):
        from repro import SplitPolicy
        from repro.storage.persistence import dump_mlth_bytes, load_mlth_bytes

        policy = SplitPolicy.thcl_ascending(0).with_(merge="none")
        original = self.build(sorted_keys, policy=policy)
        restored = load_mlth_bytes(dump_mlth_bytes(original))
        assert restored.policy == policy
        assert restored.load_factor() == original.load_factor()

    def test_magic_checked(self):
        from repro.storage.persistence import load_mlth_bytes

        with pytest.raises(StorageError):
            load_mlth_bytes(b"THCL1\n" + b"\x00" * 16)


class TestValidation:
    def test_bad_magic(self):
        with pytest.raises(StorageError):
            load_bytes(b"NOPE" + b"\x00" * 32)

    def test_truncation_detected(self, small_keys):
        data = dump_bytes(build(small_keys))
        with pytest.raises(StorageError):
            load_bytes(data[: len(data) // 2])

    def test_record_count_verified(self, small_keys):
        data = bytearray(dump_bytes(build(small_keys)))
        # Corrupt the declared record count in the JSON header, then
        # reseal so the image checksum passes and the count check fires.
        at = data.find(b'"records":')
        data[at + 10 : at + 11] = b"9"
        with pytest.raises(StorageError):
            load_bytes(_reseal(bytes(data)))


def _reseal(data):
    """Recompute the trailing image CRC over a tampered body.

    Lets tests reach the parsing layers *behind* the checksum: without
    this every flipped byte is caught by the outer CRC and the inner
    decoding paths never run.
    """
    body = data[:-4]
    return body + struct.pack(">I", zlib.crc32(body) & 0xFFFFFFFF)


class TestCorruption:
    """A damaged image must always surface as StorageError — never as a
    raw struct/json/unicode traceback from the codec internals."""

    def test_empty_image(self):
        with pytest.raises(StorageError, match="too short"):
            load_bytes(b"")

    def test_single_byte_image(self):
        with pytest.raises(StorageError):
            load_bytes(b"\x00")

    def test_flipped_checksum_byte(self, small_keys):
        data = bytearray(dump_bytes(build(small_keys)))
        data[-1] ^= 0xFF
        with pytest.raises(StorageError, match="checksum mismatch"):
            load_bytes(bytes(data))

    def test_flipped_body_byte_fails_checksum(self, small_keys):
        data = bytearray(dump_bytes(build(small_keys)))
        data[len(data) // 2] ^= 0x40
        with pytest.raises(StorageError, match="checksum mismatch"):
            load_bytes(bytes(data))

    def test_truncation_at_every_region(self, small_keys):
        # Cut the image inside the magic, the header, the trie and the
        # bucket area; every cut must fail cleanly.
        data = dump_bytes(build(small_keys))
        for cut in (3, 8, 40, len(data) // 3, len(data) - 2):
            with pytest.raises(StorageError):
                load_bytes(data[:cut])

    def test_resealed_garbage_header_is_clean(self, small_keys):
        # Valid checksum over a broken JSON header: the inner parser
        # must wrap the failure, not leak json.JSONDecodeError.
        data = bytearray(dump_bytes(build(small_keys)))
        at = data.find(b'"capacity"')
        data[at : at + 10] = b"\xff" * 10
        with pytest.raises(StorageError, match="corrupt"):
            load_bytes(_reseal(bytes(data)))

    def test_resealed_truncated_bucket_area_is_clean(self, small_keys):
        # Drop the tail of the bucket area but keep the CRC honest: the
        # record loop hits a short read and must report StorageError.
        data = dump_bytes(build(small_keys))
        with pytest.raises(StorageError):
            load_bytes(_reseal(data[: len(data) - 30] + data[-4:]))

    def test_mlth_empty_and_flipped(self, small_keys):
        from repro import MLTHFile
        from repro.storage.persistence import dump_mlth_bytes, load_mlth_bytes

        with pytest.raises(StorageError):
            load_mlth_bytes(b"")
        f = MLTHFile(bucket_capacity=5, page_capacity=8)
        for k in small_keys[:60]:
            f.insert(k)
        data = bytearray(dump_mlth_bytes(f))
        data[len(data) // 2] ^= 0x01
        with pytest.raises(StorageError, match="checksum mismatch"):
            load_mlth_bytes(bytes(data))

    def test_mlth_truncation(self, small_keys):
        from repro import MLTHFile
        from repro.storage.persistence import dump_mlth_bytes, load_mlth_bytes

        f = MLTHFile(bucket_capacity=5, page_capacity=8)
        for k in small_keys[:60]:
            f.insert(k)
        data = dump_mlth_bytes(f)
        for cut in (2, 10, len(data) // 2):
            with pytest.raises(StorageError):
                load_mlth_bytes(data[:cut])
