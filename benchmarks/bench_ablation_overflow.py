"""Section 6 future work: deferred splitting via overflow chains.

Expected shape: the load factor rises well above the ~70% baseline and
the trie shrinks (fewer, later splits), paid for by a fraction of
searches needing a second access for the overflow bucket.
"""

from conftest import once

from repro.analysis import ablation_overflow


def test_ablation_overflow(benchmark, report):
    rows = once(
        benchmark, lambda: ablation_overflow(count=5000, bucket_capacity=10)
    )
    report(
        "ablation_overflow",
        rows,
        "Ablation - overflow chaining (deferred splitting) vs plain TH",
    )
    plain, deferred = rows
    assert deferred["a%"] > plain["a%"]
    assert deferred["M"] < plain["M"]
    assert plain["reads/search"] == 1
    assert 1 < deferred["reads/search"] <= 2
