"""The process-local event bus and operation spans.

One module-level :data:`TRACER` serves the whole process. Instrumented
code guards every hook site with the *attribute check*
``if TRACER.enabled:`` — with tracing off (the default) no function is
called and no object is allocated, so the hot paths of the access
methods stay within noise of their uninstrumented cost.

Spans
-----
A span brackets one logical operation (``insert``, ``search``,
``delete``, ``range``). Spans nest: when a public operation is
implemented in terms of another (``put`` calling ``insert``,
``contains`` calling ``get``), the inner span becomes a child. Device
accesses are attributed to the *innermost* active span; when a span
closes, its totals roll up into its parent, so a root span's totals
cover everything the operation caused. Accesses that happen outside
any span (file construction, ad-hoc scans) accumulate in the tracer's
``unattributed_*`` counters. The invariant the property tests pin::

    sum(root span accesses) + unattributed == DiskStats delta

holds exactly, per device and in total, for any workload.

Trace context
-------------
Spans carry causal identity: a ``trace_id`` naming the causal tree the
span belongs to and a ``span_id``/``parent`` pair giving its place in
it. A span opened while another span is active joins the ambient trace;
a span opened with an explicit :class:`TraceContext` — the compact
``(trace_id, span_id)`` pair the distributed layer carries on every
``Op``/``Reply`` — parents under the *remote* span instead, which is
how one client operation reconstructs as a single rooted tree spanning
client, router and shard hops (see :mod:`repro.obs.causal`).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from collections.abc import Iterable, Iterator
from typing import Optional

from .events import Event

__all__ = ["Span", "TraceContext", "Tracer", "TRACER", "trace"]

#: Wire form of a trace context: ``(trace_id, span_id)``.
WireContext = tuple[int, int]


class TraceContext:
    """The compact causal coordinate a message carries: trace + span."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: int, span_id: int):
        self.trace_id = trace_id
        self.span_id = span_id

    def to_wire(self) -> WireContext:
        """The tuple form stamped onto ``Op``/``Reply`` messages."""
        return (self.trace_id, self.span_id)

    @classmethod
    def from_wire(cls, wire: Optional[WireContext]) -> Optional["TraceContext"]:
        """Rebuild a context from its wire tuple (``None`` passes through)."""
        if wire is None:
            return None
        return cls(wire[0], wire[1])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceContext(trace={self.trace_id}, span={self.span_id})"


class Span:
    """One operation's attribution record."""

    __slots__ = (
        "id",
        "trace",
        "op",
        "parent",
        "reads",
        "writes",
        "seconds",
        "fields",
        "start_seq",
        "t0",
    )

    def __init__(
        self,
        span_id: int,
        op: str,
        parent: Optional[int],
        fields: dict[str, object],
        trace: int = 0,
    ):
        self.id = span_id
        self.trace = trace
        self.op = op
        self.parent = parent
        self.reads = 0
        self.writes = 0
        self.seconds = 0.0
        self.fields = fields
        self.start_seq = 0
        self.t0 = 0.0

    @property
    def accesses(self) -> int:
        """Total device accesses attributed to this span (and children)."""
        return self.reads + self.writes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.id}, {self.op!r}, trace={self.trace}, "
            f"parent={self.parent}, r={self.reads}, w={self.writes})"
        )


class Tracer:
    """The event bus: emit points, span stack, access attribution.

    A tracer starts disabled. :meth:`activate` attaches sinks (objects
    with an ``on_event(event)`` method) and turns the hooks on;
    :meth:`deactivate` emits a final ``trace_end`` event and turns them
    off. The :func:`trace` context manager wraps the pair.
    """

    def __init__(self) -> None:
        self.enabled = False
        self._sinks: list[object] = []
        self._stack: list[Span] = []
        self._seq = 0
        self._next_span = 0
        self._next_trace = 0
        self.unattributed_reads = 0
        self.unattributed_writes = 0
        self.unattributed_seconds = 0.0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def activate(self, sinks: Iterable[object] = ()) -> None:
        """Attach ``sinks`` and enable the hooks (resets all state).

        The process-wide :data:`~repro.obs.flight.FLIGHT` recorder is
        always attached as a final sink, so the last window of events is
        available for a forensics dump whatever sinks the caller chose.
        """
        if self.enabled:
            raise RuntimeError("tracer is already active")
        from .flight import FLIGHT

        self._sinks = list(sinks)
        if FLIGHT not in self._sinks:
            self._sinks.append(FLIGHT)
        self._stack = []
        self._seq = 0
        self._next_span = 0
        self._next_trace = 0
        self.unattributed_reads = 0
        self.unattributed_writes = 0
        self.unattributed_seconds = 0.0
        self.enabled = True

    def deactivate(self) -> None:
        """Emit ``trace_end``, disable the hooks, and close the sinks.

        Every sink exposing ``close()`` is closed here — deterministically,
        in attach order — so a JSONL trace file is complete (flushed,
        ``trace_end`` included) the moment ``deactivate()`` returns, even
        on crash-path tests that never reach a ``with trace(...)`` exit.
        Sink ``close()`` must be idempotent (the :func:`trace` helper may
        close a second time).
        """
        if not self.enabled:
            return
        self.emit(
            "trace_end",
            unattributed_reads=self.unattributed_reads,
            unattributed_writes=self.unattributed_writes,
            unattributed_seconds=self.unattributed_seconds,
        )
        self.enabled = False
        sinks = self._sinks
        self._sinks = []
        self._stack = []
        for sink in sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()

    def add_sink(self, sink: object) -> None:
        """Attach one more sink to an active tracer."""
        self._sinks.append(sink)

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def emit(self, name: str, **fields: object) -> None:
        """Dispatch one event to every sink (call only when enabled)."""
        span = self._stack[-1].id if self._stack else None
        self._seq += 1
        event = Event(self._seq, name, span, fields)
        for sink in self._sinks:
            sink.on_event(event)

    def record_access(self, write: bool, device: str, seconds: float) -> None:
        """A device access: attribute it, then emit the disk event.

        Called from :meth:`repro.storage.disk.SimulatedDisk._account`
        behind the ``enabled`` check, so the disabled cost is nil.
        """
        if self._stack:
            span = self._stack[-1]
            if write:
                span.writes += 1
            else:
                span.reads += 1
            span.seconds += seconds
        else:
            if write:
                self.unattributed_writes += 1
            else:
                self.unattributed_reads += 1
            self.unattributed_seconds += seconds
        if seconds:
            self.emit(
                "disk_write" if write else "disk_read",
                device=device,
                seconds=seconds,
            )
        else:
            self.emit("disk_write" if write else "disk_read", device=device)

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def current_context(self) -> Optional[TraceContext]:
        """The innermost active span's causal coordinate (or ``None``).

        This is what a client stamps onto an outgoing ``Op`` and a
        server onto its ``Reply`` — the propagation primitive of the
        distributed tracing layer.
        """
        if not self._stack:
            return None
        top = self._stack[-1]
        return TraceContext(top.trace, top.id)

    @contextmanager
    def span(
        self, op: str, ctx: Optional[TraceContext] = None, **fields: object
    ) -> Iterator[Span]:
        """Bracket one operation; yields the live :class:`Span`.

        ``ctx`` names a *remote* causal parent (a context carried in
        from another hop): the span joins that trace under that parent.
        Without it, the span nests under the ambient stack top, or
        starts a fresh trace when the stack is empty. Access roll-up
        always follows the ambient stack — the in-process caller pays
        for the work it caused regardless of causal labeling.
        """
        self._next_span += 1
        ambient = self._stack[-1] if self._stack else None
        if ctx is not None:
            parent_id: Optional[int] = ctx.span_id
            trace_id = ctx.trace_id
        elif ambient is not None:
            parent_id = ambient.id
            trace_id = ambient.trace
        else:
            self._next_trace += 1
            parent_id = None
            trace_id = self._next_trace
        span = Span(self._next_span, op, parent_id, fields, trace=trace_id)
        span.start_seq = self._seq + 1
        span.t0 = time.perf_counter()
        self._stack.append(span)
        try:
            yield span
        finally:
            popped = self._stack.pop()
            if ambient is not None:
                # Roll child totals into the parent so root spans carry
                # everything their operation caused.
                ambient.reads += popped.reads
                ambient.writes += popped.writes
                ambient.seconds += popped.seconds
            self.emit(
                "span_end",
                op=popped.op,
                span_id=popped.id,
                parent=popped.parent,
                trace=popped.trace,
                start_seq=popped.start_seq,
                reads=popped.reads,
                writes=popped.writes,
                accesses=popped.accesses,
                seconds=popped.seconds,
                elapsed=time.perf_counter() - popped.t0,
                **popped.fields,
            )

    def wrap_iter(self, op: str, iterator: Iterator, **fields: object) -> Iterator:
        """Run an iterator inside a span (for range scans).

        The span stays open for the generator's whole life, so consume
        range iterators promptly when attributing accesses precisely.
        """
        with self.span(op, **fields):
            yield from iterator


#: The process-local tracer every instrumented component checks.
TRACER = Tracer()


@contextmanager
def trace(
    sinks: Iterable[object] = (),
    registry: Optional[object] = None,
) -> Iterator[Tracer]:
    """Enable the global tracer for a ``with`` block.

    ``registry`` is a convenience: when given, a
    :class:`~repro.obs.recorder.MetricsRecorder` folding events into it
    is attached as an extra sink. Sinks exposing ``close()`` are closed
    on exit.
    """
    all_sinks = list(sinks)
    if registry is not None:
        from .recorder import MetricsRecorder

        all_sinks.append(MetricsRecorder(registry))
    TRACER.activate(all_sinks)
    try:
        yield TRACER
    finally:
        TRACER.deactivate()
        for sink in all_sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()
