"""Unit tests for the canonical boundary model."""

import pytest

from repro import LOWERCASE, TrieCorruptionError
from repro.core.boundaries import (
    BoundaryModel,
    boundary_le,
    boundary_lt,
    boundary_sort_key,
    gap_index,
)

A = LOWERCASE


class TestBoundaryOrder:
    def test_plain_lexicographic(self):
        assert boundary_lt("a", "b", A)
        assert boundary_lt("ha", "hb", A)

    def test_proper_prefix_is_greater(self):
        # 'ha' cuts below 'h': keys <= 'ha' are a subset of keys <= 'h'.
        assert boundary_lt("ha", "h", A)
        assert boundary_lt("abc", "ab", A)
        assert boundary_lt("ab", "a", A)

    def test_le_is_reflexive(self):
        assert boundary_le("ha", "ha", A)
        assert not boundary_lt("ha", "ha", A)

    def test_space_digit_boundaries(self):
        # 'i ' (i + space) cuts below 'i', above any 'i?'-extension? No:
        # extensions of 'i' are below 'i'; among them ' ' is smallest.
        assert boundary_lt("i ", "i", A)
        assert boundary_lt("i ", "ia", A)

    def test_sort_key_total_order(self):
        bs = ["ar", "a", "b", "f", "he", "h", "i ", "i", "o", "t"]
        keys = [boundary_sort_key(s, A) for s in bs]
        assert keys == sorted(keys)  # the Fig 1 trie's inorder sequence

    def test_transitivity_sample(self):
        chain = ["aaa", "aa", "ab", "a", "ba", "b"]
        for x, y in zip(chain, chain[1:]):
            assert boundary_lt(x, y, A)


class TestGapIndex:
    BOUNDS = ["ar", "a", "b", "f", "he", "h", "i ", "i", "o", "t"]

    def test_fig1_examples(self):
        # Keys from the example file land in their paper gaps.
        assert gap_index(self.BOUNDS, "and", A) == 0  # <= 'ar'
        assert gap_index(self.BOUNDS, "as", A) == 1   # ('ar','a']
        assert gap_index(self.BOUNDS, "be", A) == 2
        assert gap_index(self.BOUNDS, "for", A) == 3
        assert gap_index(self.BOUNDS, "he", A) == 4
        assert gap_index(self.BOUNDS, "his", A) == 5
        assert gap_index(self.BOUNDS, "i", A) == 6    # 'i' <= 'i '
        assert gap_index(self.BOUNDS, "is", A) == 7
        assert gap_index(self.BOUNDS, "of", A) == 8
        assert gap_index(self.BOUNDS, "the", A) == 9
        assert gap_index(self.BOUNDS, "zoo", A) == 10

    def test_empty_boundaries(self):
        assert gap_index([], "anything", A) == 0

    def test_agrees_with_linear_scan(self):
        from repro.core.keys import prefix_le

        for key in ("a", "ar", "arc", "hat", "i", "ia", "zz"):
            linear = 0
            for s in self.BOUNDS:
                if prefix_le(key, s, A):
                    break
                linear += 1
            assert gap_index(self.BOUNDS, key, A) == linear


class TestBoundaryModel:
    def make(self):
        return BoundaryModel(A, ["b", "d"], [0, 1, 2])

    def test_lookup(self):
        m = self.make()
        assert m.lookup("apple") == 0
        assert m.lookup("cat") == 1
        assert m.lookup("zebra") == 2

    def test_len_counts_boundaries(self):
        assert len(self.make()) == 2

    def test_children_length_enforced(self):
        with pytest.raises(TrieCorruptionError):
            BoundaryModel(A, ["b"], [0])

    def test_insert_boundary(self):
        m = self.make()
        j = m.insert_boundary("c", 1, 9)
        assert j == 1
        assert m.boundaries == ["b", "c", "d"]
        assert m.children == [0, 1, 9, 2]
        # Any key starting 'c' is <= the one-digit boundary 'c'; the new
        # gap holds keys above 'c' and at or below 'd'.
        assert m.lookup("cz") == 1
        assert m.lookup("da") == 9

    def test_insert_duplicate_rejected(self):
        m = self.make()
        with pytest.raises(TrieCorruptionError):
            m.insert_boundary("b", 0, 0)

    def test_remove_boundary_keep_left(self):
        m = self.make()
        m.remove_boundary("d", keep="left")
        assert m.boundaries == ["b"]
        assert m.children == [0, 1]

    def test_remove_boundary_keep_right(self):
        m = self.make()
        m.remove_boundary("d", keep="right")
        assert m.children == [0, 2]

    def test_gap_of_boundary(self):
        m = self.make()
        assert m.gap_of_boundary("b") == 0
        assert m.gap_of_boundary("d") == 1
        with pytest.raises(KeyError):
            m.gap_of_boundary("c")

    def test_has_boundary(self):
        m = self.make()
        assert m.has_boundary("b")
        assert not m.has_boundary("bb")

    def test_buckets_in_order_dedups_runs(self):
        m = BoundaryModel(A, ["b", "c", "d"], [0, 1, 1, 2])
        assert m.buckets_in_order() == [0, 1, 2]

    def test_gaps_of_bucket(self):
        m = BoundaryModel(A, ["b", "c", "d"], [0, 1, 1, 2])
        assert m.gaps_of_bucket(1) == [1, 2]

    def test_check_detects_disorder(self):
        m = BoundaryModel(A, ["d", "b"], [0, 1, 2])
        with pytest.raises(TrieCorruptionError):
            m.check()

    def test_check_detects_missing_prefix(self):
        m = BoundaryModel(A, ["ba"], [0, 1])
        with pytest.raises(TrieCorruptionError):
            m.check(require_prefix_closed=True)
        m.check(require_prefix_closed=False)  # tolerated when asked

    def test_check_accepts_closed_set(self):
        BoundaryModel(A, ["ba", "b", "c"], [0, 1, 2, 3]).check()

    def test_nil_children(self):
        m = BoundaryModel(A, ["b"], [None, 0])
        assert m.lookup("a") is None
        assert m.lookup("c") == 0


class TestRootCandidates:
    def test_prefix_inside_span_disqualifies(self):
        m = BoundaryModel(A, ["ba", "b", "c"], [0, 1, 2, 3])
        # 'ba' has its parent 'b' inside; 'b' and 'c' qualify.
        assert m.root_candidates() == [1, 2]

    def test_subspan_frees_candidates(self):
        m = BoundaryModel(A, ["ba", "b", "c"], [0, 1, 2, 3])
        # In the span ['ba'] alone, 'b' lies outside: 'ba' qualifies.
        assert m.root_candidates(0, 1) == [0]

    def test_always_nonempty(self):
        m = BoundaryModel(
            A, ["aaa", "aa", "ab", "a"], [0, 1, 2, 3, 4]
        )
        for lo in range(4):
            for hi in range(lo + 1, 5):
                if hi <= 4:
                    assert m.root_candidates(lo, min(hi, 4)) or hi == lo
