"""Workload generator tests."""

from repro import LOWERCASE
from repro.workloads import MOST_USED_WORDS, KeyGenerator, synthetic_dictionary


class TestKeyGenerator:
    def test_uniform_count_and_uniqueness(self):
        keys = KeyGenerator(1).uniform(500)
        assert len(keys) == 500
        assert len(set(keys)) == 500

    def test_deterministic_given_seed(self):
        assert KeyGenerator(7).uniform(100) == KeyGenerator(7).uniform(100)
        assert KeyGenerator(7).uniform(100) != KeyGenerator(8).uniform(100)

    def test_salt_changes_the_draw(self):
        g = KeyGenerator(7)
        assert g.uniform(100, salt=0) != g.uniform(100, salt=1)

    def test_sorted_and_descending_agree(self):
        g = KeyGenerator(3)
        asc = g.sorted_keys(200)
        desc = g.descending_keys(200)
        assert asc == sorted(asc)
        assert desc == list(reversed(asc))

    def test_keys_valid_for_default_alphabet(self):
        for key in KeyGenerator(2).uniform(100):
            LOWERCASE.validate_key(key)

    def test_variable_length_bounds(self):
        keys = KeyGenerator(4).variable_length(200, min_length=3, max_length=7)
        assert all(3 <= len(k) <= 7 for k in keys)
        assert len(set(keys)) == 200

    def test_skewed_distribution_actually_skews(self):
        keys = KeyGenerator(5).skewed(500, concentration=2.0)
        first = [k[0] for k in keys]
        assert first.count("a") > first.count("m") >= first.count("z")

    def test_clustered_prefixes(self):
        keys = KeyGenerator(6).clustered(100)
        assert all(k.startswith("cust") for k in keys)

    def test_interleaved_runs_structure(self):
        keys = KeyGenerator(7).interleaved(100, runs=4)
        assert sorted(keys) != keys  # not globally sorted
        # but it is a concatenation of sorted runs:
        runs = 0
        for a, b in zip(keys, keys[1:]):
            if b < a:
                runs += 1
        assert runs <= 4

    def test_custom_letters(self):
        keys = KeyGenerator(1, letters="ab").uniform(10, length=8)
        assert all(set(k) <= {"a", "b"} for k in keys)


class TestEnglish:
    def test_fig1_words(self):
        assert len(MOST_USED_WORDS) == 31
        assert MOST_USED_WORDS[0] == "the"
        assert MOST_USED_WORDS[-1] == "this"
        assert len(set(MOST_USED_WORDS)) == 31

    def test_words_fit_the_example_alphabet(self):
        for w in MOST_USED_WORDS:
            LOWERCASE.validate_key(w)

    def test_synthetic_dictionary_properties(self):
        words = synthetic_dictionary(2000, seed=1)
        assert len(words) == 2000
        assert words == sorted(words)
        assert len(set(words)) == 2000
        for w in words[:200]:
            LOWERCASE.validate_key(w)

    def test_synthetic_dictionary_deterministic(self):
        assert synthetic_dictionary(500, seed=3) == synthetic_dictionary(500, seed=3)

    def test_prefix_sharing_beats_uniform(self):
        # English-like words share prefixes far more than uniform keys -
        # the property that matters for split-string length.
        from repro.core.keys import common_prefix_length

        words = synthetic_dictionary(2000, seed=2)
        uniform = KeyGenerator(2).sorted_keys(2000)

        def mean_shared(seq):
            pairs = list(zip(seq, seq[1:]))
            return sum(common_prefix_length(a, b) for a, b in pairs) / len(pairs)

        assert mean_shared(words) > mean_shared(uniform)
