"""Trie reconstruction from bucket headers (/TOR83/, Section 6).

Every bucket header stores the logical path that last addressed the
bucket (maintained by the splitting code in
:class:`~repro.core.file.THFile`). For an insert-only basic-TH file this
path is exactly the bucket's *right cut*: the boundary immediately above
its key range ("" for the rightmost bucket). The whole trie can therefore
be rebuilt from the buckets alone — the recovery story the paper cites
for an accidentally destroyed trie — and the rebuilt trie is canonically
balanced, usually better than the original.

Nil leaves cannot be recovered (no bucket records them); their empty
regions are absorbed by the following bucket, which preserves the mapping
of every *stored* key. Prefixes lost that way are re-added to keep the
boundary set prefix-closed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .alphabet import Alphabet
from .boundaries import BoundaryModel, boundary_sort_key
from .trie import Trie

if TYPE_CHECKING:  # runtime cycle: storage imports core
    from ..storage.buckets import BucketStore

__all__ = ["reconstruct_model", "reconstruct_trie"]


def reconstruct_model(store: BucketStore, alphabet: Alphabet) -> BoundaryModel:
    """Rebuild the canonical boundary model from bucket headers.

    ``store`` is the file's :class:`~repro.storage.buckets.BucketStore`;
    every live bucket is read once (the reconstruction's disk cost is one
    sweep of the file, as /TOR83/ assumes).
    """
    headed: list[tuple[tuple[int, ...], str, int]] = []
    for address in store.live_addresses():
        bucket = store.read(address)
        path = bucket.header_path
        headed.append((boundary_sort_key(path, alphabet), path, address))
    headed.sort()  # "" sorts last: its sort key is the bare pad sentinel

    cut_keys = [entry[0] for entry in headed]
    boundaries: list[str] = []
    children: list[Optional[int]] = []
    seen = {path for _, path, _ in headed}
    complete: list[str] = []
    for _, path, _ in headed:
        if path:
            complete.append(path)
        # Re-add prefixes lost with nil leaves so the set stays closed.
        for l in range(1, len(path)):
            if path[:l] not in seen:
                seen.add(path[:l])
                complete.append(path[:l])
    complete.sort(key=lambda s: boundary_sort_key(s, alphabet))

    import bisect

    boundaries = complete
    for j in range(len(boundaries) + 1):
        # The child of gap j is the bucket whose right cut is the
        # smallest original header at or above the gap's upper boundary.
        upper = (
            boundary_sort_key(boundaries[j], alphabet)
            if j < len(boundaries)
            else boundary_sort_key("", alphabet)
        )
        at = bisect.bisect_left(cut_keys, upper)
        # When the file's rightmost leaf was nil, no bucket has the ""
        # cut; gaps above every recorded cut fold into the last bucket.
        at = min(at, len(headed) - 1)
        children.append(headed[at][2])
    return BoundaryModel(alphabet, boundaries, children)


def reconstruct_trie(
    store: BucketStore, alphabet: Alphabet, pick: str = "balanced"
) -> Trie:
    """Rebuild a (canonically balanced) trie from bucket headers."""
    return Trie.from_model(reconstruct_model(store, alphabet), pick=pick)
