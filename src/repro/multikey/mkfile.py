"""A multi-attribute file over interleaved trie hashing.

Records are identified by a tuple of fixed-width attributes; the
interleaved composite key lives in an ordinary :class:`THFile`, so every
single-key property (one-access search, ordered buckets, load control
policies) carries over. Axis-aligned rectangle queries ride the z-order
bounding property: one composite range scan, filtered per record; the
:meth:`MultikeyTHFile.rectangle_stats` helper reports the filter's
selectivity so benches can quantify the curve's overhead.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from typing import Optional

from ..check.hook import maybe_audit
from ..core.alphabet import DEFAULT_ALPHABET, Alphabet
from ..core.errors import TrieCorruptionError
from ..core.file import THFile
from ..core.policies import SplitPolicy
from .interleave import Interleaver

__all__ = ["MultikeyTHFile"]


class MultikeyTHFile:
    """Trie hashing over interleaved multi-attribute keys.

    Parameters
    ----------
    widths:
        Maximum digits per attribute.
    bucket_capacity / policy / alphabet:
        Forwarded to the underlying :class:`THFile`.
    """

    def __init__(
        self,
        widths: Sequence[int],
        bucket_capacity: int = 20,
        policy: Optional[SplitPolicy] = None,
        alphabet: Alphabet = DEFAULT_ALPHABET,
    ):
        self.interleaver = Interleaver(widths, alphabet)
        self.file = THFile(bucket_capacity, policy, alphabet)

    # ------------------------------------------------------------------
    # Exact-match operations
    # ------------------------------------------------------------------
    def insert(self, values: Sequence[str], payload: object = None) -> None:
        """Insert a record under the attribute tuple."""
        self.file.insert(self.interleaver.compose(values), payload)
        maybe_audit(self, "MultikeyTHFile.insert")

    def put(self, values: Sequence[str], payload: object = None) -> None:
        """Insert or overwrite."""
        self.file.put(self.interleaver.compose(values), payload)
        maybe_audit(self, "MultikeyTHFile.put")

    def get(self, values: Sequence[str]) -> object:
        """Payload stored under the exact attribute tuple."""
        return self.file.get(self.interleaver.compose(values))

    def contains(self, values: Sequence[str]) -> bool:
        """True when the exact tuple is stored."""
        return self.file.contains(self.interleaver.compose(values))

    def delete(self, values: Sequence[str]) -> object:
        """Delete the record under the tuple."""
        payload = self.file.delete(self.interleaver.compose(values))
        maybe_audit(self, "MultikeyTHFile.delete")
        return payload

    def __len__(self) -> int:
        return len(self.file)

    def items(self) -> Iterator[tuple[tuple[str, ...], object]]:
        """Every record in z order, decomposed."""
        for key, payload in self.file.items():
            yield self.interleaver.decompose(key), payload

    # ------------------------------------------------------------------
    # Rectangle (region) queries
    # ------------------------------------------------------------------
    def rectangle(
        self,
        lows: Sequence[Optional[str]],
        highs: Sequence[Optional[str]],
    ) -> Iterator[tuple[tuple[str, ...], object]]:
        """Records whose every attribute lies in ``[low_i, high_i]``.

        ``None`` bounds are open. Runs one composite-key range scan
        between the box corners (the z-order bounding property) and
        filters record-wise.
        """
        yield from (
            hit for hit, matched in self._rectangle_scan(lows, highs) if matched
        )

    def rectangle_stats(
        self,
        lows: Sequence[Optional[str]],
        highs: Sequence[Optional[str]],
    ) -> tuple[int, int]:
        """(matching records, scanned candidates) for one rectangle."""
        matches = scanned = 0
        for _, matched in self._rectangle_scan(lows, highs):
            scanned += 1
            matches += matched
        return matches, scanned

    def _rectangle_scan(self, lows, highs):
        inter = self.interleaver
        low_key = inter.low_corner(list(lows))
        high_key = inter.high_corner(list(highs))
        alphabet = inter.alphabet
        low_canon = low_key.rstrip(alphabet.min_digit)
        for key, payload in self.file.range_items(
            low_canon if low_canon else None, high_key
        ):
            values = inter.decompose(key)
            inside = True
            for v, lo, hi in zip(values, lows, highs):
                if lo is not None and v.ljust(len(lo), alphabet.min_digit) < lo:
                    inside = False
                    break
                if hi is not None and not self._le_bound(v, hi, alphabet):
                    inside = False
                    break
            if inside:
                yield (values, payload), 1
            else:
                yield (values, payload), 0

    @staticmethod
    def _le_bound(value: str, bound: str, alphabet: Alphabet) -> bool:
        """Attribute comparison with trie hashing's padding semantics."""
        from ..core.keys import prefix_le

        return prefix_le(value if value else alphabet.min_digit, bound, alphabet)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def directory_size(self) -> int:
        """Trie cells — the analogue of a grid file's directory entries."""
        return self.file.trie_size()

    def load_factor(self) -> float:
        """Bucket load factor of the underlying file."""
        return self.file.load_factor()

    def check(self) -> None:
        """Validate the underlying file and key decomposition."""
        self.file.check()
        for key, _ in self.file.items():
            values = self.interleaver.decompose(key)
            if self.interleaver.compose(values) != key:
                raise TrieCorruptionError(
                    f"interleaved key {key!r} does not round-trip through "
                    f"decompose/compose"
                )
