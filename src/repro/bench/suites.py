"""The four standard benchmark suites of the perf trajectory.

Each suite is a function ``(count, seed) -> dict`` driving a seeded
workload and returning one flat-ish JSON-ready document. The documents
mix two kinds of numbers, and the distinction is load-bearing for the
CI gate (``scripts/bench_gate.py``):

* **structural** metrics — record counts, load factors, trie sizes,
  shard counts, convergence ratios, retry/dedup/fault counters,
  simulated clocks and simulated-latency percentiles. These are exact
  functions of ``(count, seed)`` (seeded ``random.Random``, simulated
  fabric time) and must reproduce bit-identically on any machine;
* **wall-clock rates** — every key ending in ``_per_s``. These measure
  the host and are only ratio-compared, within a generous tolerance.

The suites are the same workloads the pre-harness ``benchmarks/smoke.py``
and ``benchmarks/bench_chaos.py`` ran (same default seeds 7 / 13 / 0),
so the first committed trajectory is continuous with historical CI
artifact numbers.
"""

from __future__ import annotations

import random
import time

from ..core.bulk import bulk_load_th
from ..core.cursor import Cursor
from ..core.file import THFile
from ..distributed.chaos import run_chaos
from ..distributed.coordinator import Cluster, ShardPolicy
from ..distributed.faults import FaultPlan, RetryPolicy
from ..obs.metrics import MetricsRegistry
from ..obs.recorder import MetricsRecorder
from ..obs.tracer import TRACER
from ..workloads import KeyGenerator

__all__ = [
    "SUITES",
    "FAULT_RATES",
    "core_suite",
    "distributed_suite",
    "chaos_suite",
    "throughput_suite",
    "compact_suite",
    "serving_suite",
]

#: Fault-rate sweep shared by the chaos and throughput suites.
FAULT_RATES = (0.0, 0.01, 0.05)


def _timed(fn):
    start = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - start


# ----------------------------------------------------------------------
# core: single-node TH
# ----------------------------------------------------------------------
def core_suite(
    count: int = 4000, seed: int = 7, trie_backend: str = "cells"
) -> dict:
    """Single-node TH: insert/search/scan/cursor/bulk-load rates."""
    keys = KeyGenerator(seed).uniform(count)
    ordered = sorted(keys)

    def build():
        f = THFile(bucket_capacity=20, trie_backend=trie_backend)
        for k in keys:
            f.insert(k)
        return f

    f, insert_s = _timed(build)
    probes = keys[::3]
    _, get_s = _timed(lambda: [f.get(k) for k in probes])
    lo, hi = ordered[count // 10], ordered[(9 * count) // 10]
    scanned, scan_s = _timed(lambda: sum(1 for _ in f.range_items(lo, hi)))

    def cursor_walk():
        cur = Cursor(f)
        cur.seek(lo)
        n = 0
        while cur.valid and cur.key() <= hi:
            n += 1
            cur.next()
        return n

    walked, cursor_s = _timed(cursor_walk)
    bulk, bulk_s = _timed(
        lambda: bulk_load_th(
            ((k, None) for k in ordered),
            bucket_capacity=20,
            trie_backend=trie_backend,
        )
    )
    return {
        "keys": count,
        "insert_ops_per_s": round(count / insert_s),
        "get_ops_per_s": round(len(probes) / get_s),
        "scan_records_per_s": round(scanned / scan_s),
        "cursor_records_per_s": round(walked / cursor_s),
        "bulk_load_ops_per_s": round(count / bulk_s),
        "load_factor": round(f.load_factor(), 4),
        "bulk_load_factor": round(bulk.load_factor(), 4),
        "trie_cells": f.trie_size(),
        "buckets": f.bucket_count(),
        "scan_records": scanned,
        "cursor_records": walked,
    }


# ----------------------------------------------------------------------
# distributed: the TH* shard layer
# ----------------------------------------------------------------------
def distributed_suite(
    count: int = 4000, seed: int = 13, trie_backend: str = "cells"
) -> dict:
    """TH* layer: routed throughput, scale-out, and image convergence."""
    registry = MetricsRegistry()
    already_tracing = TRACER.enabled
    if not already_tracing:
        TRACER.activate([MetricsRecorder(registry)])
    try:
        cluster = Cluster(
            shards=4,
            bucket_capacity=20,
            shard_policy=ShardPolicy(shard_capacity=max(64, count // 12)),
            registry=registry,
            trie_backend=trie_backend,
        )
        writer = cluster.client(warm=True)
        keys = KeyGenerator(seed).uniform(count)
        _, insert_s = _timed(lambda: [writer.insert(k) for k in keys])

        cold = cluster.client()
        warmup = keys[: max(50, count // 10)]
        for k in warmup:
            cold.contains(k)
        cold.reset_window()
        _, get_s = _timed(lambda: [cold.get(k) for k in keys[::3]])
        scanned, scan_s = _timed(lambda: sum(1 for _ in cold.items()))
        cluster.check()
        snapshot = registry.snapshot()
        return {
            "keys": count,
            "insert_ops_per_s": round(count / insert_s),
            "routed_get_ops_per_s": round(len(keys[::3]) / get_s),
            "scan_records_per_s": round(scanned / scan_s),
            "shards": cluster.shard_count(),
            "writer_convergence": round(writer.convergence(), 4),
            "cold_client_window_convergence": round(
                cold.convergence(window=True), 4
            ),
            "cold_client_iam_boundaries": cold.iam_boundaries,
            "forwards_total": sum(
                v
                for k, v in snapshot["counters"].items()
                if k.startswith("dist_forwards_total")
            ),
            "shard_splits": snapshot["counters"].get(
                "dist_shard_splits_total", 0
            ),
        }
    finally:
        if not already_tracing:
            TRACER.deactivate()


# ----------------------------------------------------------------------
# chaos: differential convergence under faults
# ----------------------------------------------------------------------
def chaos_rate_run(
    count: int, rate: float, seed: int = 0, trie_backend: str = "cells"
) -> dict:
    """One fault-rate point: differential run + throughput numbers."""
    start = time.perf_counter()
    report = run_chaos(
        ops=count,
        shards=4,
        seed=seed,
        durable=True,
        drop=rate,
        duplicate=rate,
        delay=rate,
        crash_cycles=3 if rate else 0,
        shard_capacity=max(128, count // 8),
        trie_backend=trie_backend,
    )
    wall = time.perf_counter() - start
    return {
        "fault_rate": rate,
        "ops": report.ops,
        "wall_ops_per_s": round(report.ops / wall),
        "sim_seconds": round(report.clock, 4),
        "faults_injected": report.faults,
        "retries": report.retries,
        "dedup_hits": report.dedup_hits,
        "crashes": report.crashes,
        "recoveries": report.recoveries,
        "duplicate_applies": report.duplicate_applies,
        "messages": report.messages,
        "forwards": report.forwards,
        "shards_final": report.shards,
        "records_final": report.records,
        "converged": report.converged,
    }


def replication_chaos_run(count: int, seed: int = 0) -> dict:
    """Failover chaos point: forced primary kills + a live migration.

    Every structural number (kills, failovers, the sim-clock MTTR) is an
    exact function of ``(count, seed)``; only ``wall_ops_per_s`` is
    host-dependent (and ratio-gated). The run itself is a correctness
    gate too: it raises unless the differential converged byte-identical
    through three promotions and a cutover with zero double-applies.
    """
    start = time.perf_counter()
    report = run_chaos(
        ops=count,
        shards=4,
        seed=seed,
        durable=True,
        drop=0.01,
        duplicate=0.01,
        delay=0.01,
        crash_cycles=0,
        kill_cycles=3,
        migrate_cycles=1,
        replication="semisync",
        shard_capacity=max(128, count // 8),
    )
    wall = time.perf_counter() - start
    return {
        "ops": report.ops,
        "kills": report.kills,
        "failovers": report.failovers,
        "migrations": report.migrations,
        "failover_mttr_sim_s": round(report.failover_mttr, 4),
        "duplicate_applies": report.duplicate_applies,
        "faults_injected": report.faults,
        "shards_final": report.shards,
        "records_final": report.records,
        "converged": report.converged,
        "wall_ops_per_s": round(report.ops / wall),
    }


def migration_load_run(count: int, seed: int = 0) -> dict:
    """Client throughput sustained *while* a region is being moved.

    Loads a replicated two-shard cluster, then interleaves a batch of
    client puts with each snapshot chunk of a live migration until the
    cutover barrier lands. ``migrate_ops_per_s`` is the wall rate of
    those puts (ratio-gated); batching ~20 puts per chunk keeps the
    measured window large enough for the 60% gate even at tiny counts.
    The op and record counts are structural.
    """
    cluster = Cluster(
        shards=2,
        bucket_capacity=16,
        shard_policy=ShardPolicy(shard_capacity=max(4096, count * 2)),
        durable=True,
        replication="semisync",
    )
    client = cluster.client(warm=True)
    keys = KeyGenerator(seed).uniform(count)
    for k in keys:
        client.put(k, k.upper())
    coordinator = cluster.coordinator
    source = min(coordinator.servers)
    start = time.perf_counter()
    coordinator.start_migration(source, chunk_size=max(8, count // 50))
    ops_during_move = 0
    while source in coordinator.migrations:
        for _ in range(20):
            client.put(keys[ops_during_move % len(keys)], "v2")
            ops_during_move += 1
        if not coordinator.step_migration(source):
            coordinator.finish_migration(source)
    wall = time.perf_counter() - start
    cluster.check()
    return {
        "records": count,
        "ops_during_move": ops_during_move,
        "migrate_ops_per_s": round(ops_during_move / wall),
        "migrations_done": coordinator.migrations_done,
        "shards_final": cluster.shard_count(),
    }


def chaos_suite(
    count: int = 2000, seed: int = 0, trie_backend: str = "cells"
) -> dict:
    """Differential chaos sweep across :data:`FAULT_RATES`.

    Every rate re-proves byte-identical convergence against the
    single-node oracle, so the suite doubles as an end-to-end
    correctness gate (``duplicate_applies`` must be zero everywhere).
    The ``replication`` and ``migration`` blocks extend the gate to the
    availability machinery: automatic failover under permanent kills,
    and client throughput while a region moves.
    """
    return {
        "differential": [
            chaos_rate_run(count, rate, seed, trie_backend=trie_backend)
            for rate in FAULT_RATES
        ],
        "replication": replication_chaos_run(count, seed),
        "migration": migration_load_run(max(400, count // 2), seed),
    }


# ----------------------------------------------------------------------
# throughput: the distributed path alone (no oracle mirroring)
# ----------------------------------------------------------------------
def _latency_stats(registry) -> dict:
    for inst in registry.instruments():
        if inst.name == "dist_op_seconds" and hasattr(inst, "percentile"):
            return {
                "sim_latency_p50_s": round(inst.percentile(50), 6),
                "sim_latency_p95_s": round(inst.percentile(95), 6),
                "sim_latency_p99_s": round(inst.percentile(99), 6),
                "sim_latency_mean_s": round(inst.mean, 6),
                "ops_measured": inst.total,
            }
    return {}


def throughput_rate_run(
    count: int, rate: float, seed: int = 0, trie_backend: str = "cells"
) -> dict:
    """Pure insert/get throughput under faults (no oracle mirroring).

    The differential run spends most of its time in the oracle and the
    comparisons; this pass measures the distributed path alone, with
    per-op simulated latency percentiles from ``dist_op_seconds``.
    """
    plan = FaultPlan(seed=seed, drop=rate, duplicate=rate, delay=rate)
    cluster = Cluster(
        shards=4,
        durable=True,
        shard_policy=ShardPolicy(shard_capacity=max(128, count // 8)),
        faults=plan,
        retry=RetryPolicy(max_retries=12),
        trie_backend=trie_backend,
    )
    client = cluster.client()
    rng = random.Random(seed)
    alphabet = "abcdefghijklmnopqrstuvwxyz"
    keys: list[str] = []
    seen = set()
    while len(keys) < count:
        key = "".join(rng.choice(alphabet) for _ in range(rng.randint(2, 8)))
        if key not in seen:
            seen.add(key)
            keys.append(key)
    start = time.perf_counter()
    for key in keys:
        client.insert(key, key.upper())
    insert_s = time.perf_counter() - start
    start = time.perf_counter()
    for key in keys[::3]:
        client.get(key)
    get_s = time.perf_counter() - start
    plan.heal()
    cluster.check()
    out = {
        "fault_rate": rate,
        "insert_ops_per_s": round(count / insert_s),
        "get_ops_per_s": round(len(keys[::3]) / get_s),
        "retries": client.retries_total,
    }
    out.update(_latency_stats(cluster.registry))
    return out


def throughput_suite(
    count: int = 2000, seed: int = 0, trie_backend: str = "cells"
) -> dict:
    """Raw distributed throughput sweep across :data:`FAULT_RATES`."""
    return {
        "throughput": [
            throughput_rate_run(count, rate, seed, trie_backend=trie_backend)
            for rate in FAULT_RATES
        ]
    }


# ----------------------------------------------------------------------
# compact: cells vs compact backends, per-key vs batched
# ----------------------------------------------------------------------
def compact_suite(
    count: int = 6000, seed: int = 7, trie_backend: str = "cells"
) -> dict:
    """The hot-path suite: both trie backends, per-key and batched.

    The workload is composite clustered keys (four long shared prefixes
    plus a short random suffix), where the descent dominates per-op cost
    — the regime the flat column layout exists for. Both backends build
    the same file (``backends_identical`` asserts byte-identical
    serialisation); rates are measured per backend, then batched
    ``get_many`` / ``put_many`` on the compact file.

    The ``*_speedup_x`` keys are wall-clock ratios against the cells
    per-key baseline (machine-dependent, ratio-gated like ``_per_s``).
    Batched put is measured as upserts into the built file — the regime
    where sorting once and visiting each bucket once pays off; a build
    from scratch is split-dominated, so it is kept only as the
    structural ``batch_built_records`` check. ``trie_backend`` is
    accepted for harness uniformity but ignored: this suite always
    measures both backends.
    """
    del trie_backend  # always comparative; see docstring
    prefixes = ["customerorderlineitem" + c for c in "abcd"]
    keys = KeyGenerator(seed).clustered(
        count, prefixes=prefixes, suffix_length=6
    )
    chunk = 1500

    def best(fn, reps: int = 3):
        # Best-of-N, like timeit: the minimum is the least noisy
        # estimate of the true cost on a shared machine, and every
        # timed body here is idempotent (rebuild or upsert), so
        # repetition is safe.
        out, best_s = None, float("inf")
        for _ in range(reps):
            out, elapsed = _timed(fn)
            best_s = min(best_s, elapsed)
        return out, best_s

    def build(backend: str) -> THFile:
        f = THFile(bucket_capacity=50, trie_backend=backend)
        for k in keys:
            f.insert(k)
        return f

    cells, cells_insert_s = best(lambda: build("cells"))
    compact, compact_insert_s = best(lambda: build("compact"))
    probes = keys
    _, cells_get_s = best(lambda: [cells.get(k) for k in probes])
    _, compact_get_s = best(lambda: [compact.get(k) for k in probes])

    def batched_get() -> int:
        found = 0
        for i in range(0, len(probes), chunk):
            found += len(compact.get_many(probes[i : i + chunk]))
        return found

    found, batch_get_s = best(batched_get)

    _, cells_put_s = best(lambda: [cells.put(k, "v") for k in keys])

    def batched_put() -> None:
        for i in range(0, count, chunk):
            compact.put_many([(k, "v") for k in keys[i : i + chunk]])

    _, batch_put_s = best(batched_put)

    batch_built = THFile(bucket_capacity=50, trie_backend="compact")
    for i in range(0, count, chunk):
        batch_built.put_many([(k, None) for k in keys[i : i + chunk]])

    from ..storage.serializer import serialize_trie

    return {
        "keys": count,
        "cells_insert_ops_per_s": round(count / cells_insert_s),
        "compact_insert_ops_per_s": round(count / compact_insert_s),
        "cells_get_ops_per_s": round(len(probes) / cells_get_s),
        "compact_get_ops_per_s": round(len(probes) / compact_get_s),
        "batch_get_ops_per_s": round(len(probes) / batch_get_s),
        "cells_put_ops_per_s": round(count / cells_put_s),
        "batch_put_ops_per_s": round(count / batch_put_s),
        "insert_speedup_x": round(cells_insert_s / compact_insert_s, 2),
        "get_speedup_x": round(cells_get_s / compact_get_s, 2),
        "batch_get_speedup_x": round(cells_get_s / batch_get_s, 2),
        "batch_put_speedup_x": round(cells_put_s / batch_put_s, 2),
        "found": found,
        "records": len(compact),
        "buckets": compact.bucket_count(),
        "trie_cells": compact.trie_size(),
        "load_factor": round(compact.load_factor(), 4),
        "backends_identical": serialize_trie(cells.trie)
        == serialize_trie(compact.trie),
        "batch_built_records": len(batch_built),
    }


# ----------------------------------------------------------------------
# serving: concurrent clients over a real asyncio UDS server
# ----------------------------------------------------------------------
def _wall_percentile(sorted_lats: list, q: float) -> float:
    index = min(len(sorted_lats) - 1, int(round(q / 100 * (len(sorted_lats) - 1))))
    return sorted_lats[index]


def serving_suite(
    count: int = 1200, seed: int = 0, trie_backend: str = "cells"
) -> dict:
    """Concurrent clients against a live UDS :class:`ServingServer`.

    Four synchronous sessions on four threads drive a striped insert
    phase and a one-in-three read-back phase against one server; every
    op is a real framed roundtrip through the codec, the dispatcher's
    micro-batching and the group-fsync barrier. Latencies are
    wall-clock (``*_ms_wall`` keys, ratio-gated downward like
    ``_per_s`` keys are gated upward); the key set and final record
    count are exact functions of ``(count, seed)``.
    """
    import threading

    from ..serving import ServingFixture

    clients = 4
    cluster = Cluster(
        shards=4,
        durable=True,
        shard_policy=ShardPolicy(shard_capacity=max(128, count // 8)),
        trie_backend=trie_backend,
    )
    rng = random.Random(seed)
    alphabet = "abcdefghijklmnopqrstuvwxyz"
    keys: list[str] = []
    seen = set()
    while len(keys) < count:
        key = "".join(rng.choice(alphabet) for _ in range(rng.randint(2, 8)))
        if key not in seen:
            seen.add(key)
            keys.append(key)

    latencies: list[float] = []
    lock = threading.Lock()

    def warm(session) -> None:
        # Read-only warm-up: first roundtrips pay thread/socket/bytecode
        # cold starts that would otherwise skew the measured percentiles.
        for _ in range(50):
            session.file.contains("warmup")

    def worker(session, part: list) -> None:
        lats = []
        for key in part:
            t0 = time.perf_counter()
            session.file.insert(key, key.upper())
            lats.append(time.perf_counter() - t0)
        for key in part[::3]:
            t0 = time.perf_counter()
            session.file.get(key)
            lats.append(time.perf_counter() - t0)
        with lock:
            latencies.extend(lats)

    with ServingFixture(cluster) as fixture:
        sessions = [fixture.open_session() for _ in range(clients)]
        warmers = [
            threading.Thread(target=warm, args=(session,))
            for session in sessions
        ]
        for thread in warmers:
            thread.start()
        for thread in warmers:
            thread.join()
        threads = [
            threading.Thread(
                target=worker, args=(session, keys[i::clients])
            )
            for i, session in enumerate(sessions)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall_s = time.perf_counter() - start
        stats = sessions[0].transport.control({"cmd": "stats"})

    latencies.sort()
    ops = len(latencies)
    return {
        "clients": clients,
        "ops": ops,
        "records_final": stats["records"],
        "duplicate_applies": stats["duplicate_applies"],
        "serving_ops_per_s": round(ops / wall_s),
        "p50_ms_wall": round(_wall_percentile(latencies, 50) * 1000, 4),
        "p95_ms_wall": round(_wall_percentile(latencies, 95) * 1000, 4),
        "p99_ms_wall": round(_wall_percentile(latencies, 99) * 1000, 4),
    }


#: Suite name -> (runner, default seed, one-line description).
SUITES: dict[str, tuple] = {
    "core": (core_suite, 7, "single-node TH rates and structure"),
    "distributed": (distributed_suite, 13, "TH* routing and convergence"),
    "chaos": (chaos_suite, 0, "differential convergence under faults"),
    "throughput": (throughput_suite, 0, "distributed path throughput"),
    "compact": (compact_suite, 7, "cells vs compact backends, per-key vs batched"),
    "serving": (serving_suite, 0, "concurrent clients over a real UDS server"),
}
