"""CI chaos benchmark: throughput and latency under injected faults.

Runs the differential chaos workload (:func:`repro.distributed.chaos
.run_chaos`) at a sweep of fault rates — 0% (baseline), 1% and 5% drops
/ duplicates / delays plus crash-restart cycles — and writes
``BENCH_chaos.json``: wall-clock throughput, simulated-latency
percentiles from the ``dist_op_seconds`` histogram, and the audit
counters (faults injected, retries, dedup hits, double-applies, which
must be zero). Every run also re-proves byte-identical convergence
against the single-node oracle, so the benchmark doubles as an
end-to-end correctness gate.

Usage::

    PYTHONPATH=src python benchmarks/bench_chaos.py [--out-dir DIR] [--count N]
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
import time
from pathlib import Path

from repro import __version__
from repro.distributed import Cluster, FaultPlan, RetryPolicy, ShardPolicy
from repro.distributed.chaos import run_chaos

FAULT_RATES = (0.0, 0.01, 0.05)


def _latency_stats(registry) -> dict:
    for inst in registry.instruments():
        if inst.name == "dist_op_seconds" and hasattr(inst, "percentile"):
            return {
                "sim_latency_p50_s": round(inst.percentile(50), 6),
                "sim_latency_p99_s": round(inst.percentile(99), 6),
                "sim_latency_mean_s": round(inst.mean, 6),
                "ops_measured": inst.total,
            }
    return {}


def chaos_rate_run(count: int, rate: float, seed: int = 0) -> dict:
    """One fault-rate point: differential run + throughput numbers."""
    start = time.perf_counter()
    report = run_chaos(
        ops=count,
        shards=4,
        seed=seed,
        durable=True,
        drop=rate,
        duplicate=rate,
        delay=rate,
        crash_cycles=3 if rate else 0,
        shard_capacity=max(128, count // 8),
    )
    wall = time.perf_counter() - start
    row = {
        "fault_rate": rate,
        "ops": report.ops,
        "wall_ops_per_s": round(report.ops / wall),
        "sim_seconds": round(report.clock, 4),
        "faults_injected": report.faults,
        "retries": report.retries,
        "dedup_hits": report.dedup_hits,
        "crashes": report.crashes,
        "recoveries": report.recoveries,
        "duplicate_applies": report.duplicate_applies,
        "messages": report.messages,
        "forwards": report.forwards,
        "shards_final": report.shards,
        "records_final": report.records,
        "converged": report.converged,
    }
    return row


def raw_throughput(count: int, rate: float, seed: int = 0) -> dict:
    """Pure insert/get throughput under faults (no oracle mirroring).

    The differential run spends most of its time in the oracle and the
    comparisons; this pass measures the distributed path alone, with
    per-op simulated latency percentiles from ``dist_op_seconds``.
    """
    plan = FaultPlan(seed=seed, drop=rate, duplicate=rate, delay=rate)
    cluster = Cluster(
        shards=4,
        durable=True,
        shard_policy=ShardPolicy(shard_capacity=max(128, count // 8)),
        faults=plan,
        retry=RetryPolicy(max_retries=12),
    )
    client = cluster.client()
    rng = random.Random(seed)
    alphabet = "abcdefghijklmnopqrstuvwxyz"
    keys = []
    seen = set()
    while len(keys) < count:
        key = "".join(rng.choice(alphabet) for _ in range(rng.randint(2, 8)))
        if key not in seen:
            seen.add(key)
            keys.append(key)
    start = time.perf_counter()
    for key in keys:
        client.insert(key, key.upper())
    insert_s = time.perf_counter() - start
    start = time.perf_counter()
    for key in keys[::3]:
        client.get(key)
    get_s = time.perf_counter() - start
    plan.heal()
    cluster.check()
    out = {
        "fault_rate": rate,
        "insert_ops_per_s": round(count / insert_s),
        "get_ops_per_s": round(len(keys[::3]) / get_s),
        "retries": client.retries_total,
    }
    out.update(_latency_stats(cluster.registry))
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out-dir", type=Path, default=Path("."))
    parser.add_argument("--count", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    args.out_dir.mkdir(parents=True, exist_ok=True)

    results = {
        "differential": [
            chaos_rate_run(args.count, rate, args.seed)
            for rate in FAULT_RATES
        ],
        "throughput": [
            raw_throughput(args.count, rate, args.seed)
            for rate in FAULT_RATES
        ],
    }
    document = {
        "benchmark": "chaos",
        "version": __version__,
        "python": platform.python_version(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "results": results,
    }
    path = args.out_dir / "BENCH_chaos.json"
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")
    print(json.dumps(results, indent=2, sort_keys=True))
    if any(r["duplicate_applies"] for r in results["differential"]):
        print("FATAL: duplicate applies detected", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
