"""Checkpoints and crash recovery over the write-ahead log.

This module closes the durability loop opened by :mod:`repro.storage.wal`:

* **Checkpoints** — a sectioned binary image of the file (header, index
  structure, per-bucket records, every section CRC-guarded) written with
  :meth:`~repro.storage.wal.StableStore.write_atomic` temp-file + rename
  semantics, so a checkpoint is never half-visible. Checkpoints are
  *incremental*: only the buckets dirtied since the previous checkpoint
  are rewritten, and the manifest keeps a short *chain* of checkpoint
  names whose newest-wins union reconstitutes every live bucket. Every
  ``max_chain``-th checkpoint is full and resets the chain.

* **Recovery** — :func:`DurableFile.open` on a store holding a MANIFEST
  loads the chain newest-to-oldest, re-materialises the file, and
  replays the committed operation records with LSN beyond the checkpoint
  (logical REDO: the operations are deterministic, so re-executing them
  rebuilds an equivalent structure). A torn or corrupt log tail is
  discarded — those operations were never acknowledged. When the
  checkpoint's *index* section (the trie image) is lost but the bucket
  sections survive, trie-hashing files fall back to the Section-6
  reconstruction of /TOR83/ (:func:`~repro.core.reconstruct
  .reconstruct_trie`); multilevel files rebuild by re-inserting the
  surviving records.

* **The session front-end** — :class:`DurableFile` wraps any of the four
  engines (``th``, ``thcl`` via its split policy, ``mlth``, ``btree``)
  and enforces the ack protocol: apply in memory, append the operation
  record, fsync, *then* return. An operation that returns was durable at
  the instant it returned; one interrupted by a crash may or may not
  survive, which is exactly the contract the crash-point tests assert.

See ``docs/DURABILITY.md`` for the wire formats and the full protocol.
"""

from __future__ import annotations

import dataclasses
import io
import json
import struct
import zlib
from contextlib import contextmanager, nullcontext
from collections.abc import Iterable, Iterator
from typing import Optional

from ..check.hook import maybe_audit
from ..core.alphabet import DEFAULT_ALPHABET, Alphabet
from ..core.errors import (
    DuplicateKeyError,
    InvalidKeyError,
    KeyNotFoundError,
    RecoveryError,
    StorageError,
    TrieHashingError,
)
from ..core.policies import SplitPolicy
from ..obs.tracer import TRACER
from .dedup import DedupWindow, RequestId
from .serializer import deserialize_bucket, deserialize_trie, serialize_bucket, serialize_trie
from .wal import (
    REC_DELETE,
    REC_INSERT,
    REC_PUT,
    StableStore,
    WALWriter,
    read_records,
)

__all__ = ["DurableFile", "RecoveryReport", "MANIFEST_NAME"]

MANIFEST_NAME = "MANIFEST"
_CKPT_MAGIC = b"THCK1\n"


# ----------------------------------------------------------------------
# Sectioned checkpoint codec
# ----------------------------------------------------------------------
def _section(payload: bytes) -> bytes:
    """Frame one section: length, CRC32, payload."""
    return struct.pack(">II", len(payload), zlib.crc32(payload) & 0xFFFFFFFF) + payload


def _read_section(stream: io.BytesIO) -> tuple[Optional[bytes], bool]:
    """Read one section; ``(payload, crc_ok)`` — payload None if truncated."""
    frame = stream.read(8)
    if len(frame) < 8:
        return None, False
    length, stored = struct.unpack(">II", frame)
    payload = stream.read(length)
    if len(payload) < length:
        return None, False
    return payload, (zlib.crc32(payload) & 0xFFFFFFFF) == stored


def encode_checkpoint(
    header: dict, index: bytes, buckets: list[tuple[int, bytes]]
) -> bytes:
    """Build a checkpoint image: magic, header, index, bucket sections."""
    out = io.BytesIO()
    out.write(_CKPT_MAGIC)
    out.write(_section(json.dumps(header, separators=(",", ":")).encode()))
    out.write(_section(index))
    for address, payload in buckets:
        out.write(struct.pack(">I", address))
        out.write(_section(payload))
    return out.getvalue()


def decode_checkpoint(
    data: bytes, name: str
) -> tuple[dict, Optional[bytes], dict[int, bytes]]:
    """Parse a checkpoint image, verifying every section CRC.

    A corrupt header or bucket section raises :class:`RecoveryError`
    (there is no second source for either). A corrupt *index* section is
    survivable — the caller falls back to reconstruction — so it comes
    back as ``None`` instead.
    """
    stream = io.BytesIO(data)
    if stream.read(len(_CKPT_MAGIC)) != _CKPT_MAGIC:
        raise RecoveryError(f"{name} is not a checkpoint image")
    raw_header, header_ok = _read_section(stream)
    if raw_header is None or not header_ok:
        raise RecoveryError(f"corrupt checkpoint header in {name}")
    try:
        header = json.loads(raw_header.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise RecoveryError(f"corrupt checkpoint header in {name}: {exc}") from None
    index, index_ok = _read_section(stream)
    buckets: dict[int, bytes] = {}
    while True:
        chunk = stream.read(4)
        if not chunk:
            break
        if len(chunk) < 4:
            raise RecoveryError(f"truncated bucket directory in {name}")
        (address,) = struct.unpack(">I", chunk)
        payload, ok = _read_section(stream)
        if payload is None or not ok:
            raise RecoveryError(f"corrupt bucket {address} in checkpoint {name}")
        buckets[address] = payload
    return header, (index if index_ok else None), buckets


def _apply_op(file, rec_type: int, key: str, value) -> object:
    """Execute one operation record against an engine (live path & REDO)."""
    if rec_type == REC_INSERT:
        return file.insert(key, value)
    if rec_type == REC_PUT:
        if hasattr(file, "put"):
            return file.put(key, value)
        if file.contains(key):  # engines without native upsert (MLTH)
            file.delete(key)
        return file.insert(key, value)
    if rec_type == REC_DELETE:
        return file.delete(key)
    raise StorageError(f"unknown operation record type {rec_type}")


# ----------------------------------------------------------------------
# Engine adapters
# ----------------------------------------------------------------------
class _THEngine:
    """Adapter for :class:`~repro.core.file.THFile` (TH and THCL)."""

    kind = "th"
    uses_buckets = True

    @staticmethod
    def fresh_params(
        capacity: int = 4,
        policy: Optional[SplitPolicy] = None,
        alphabet: Alphabet = DEFAULT_ALPHABET,
        trie_backend: str = "cells",
    ) -> dict:
        policy = policy if policy is not None else SplitPolicy()
        return {
            "capacity": capacity,
            "policy": dataclasses.asdict(policy),
            "alphabet": alphabet.digits,
            "trie_backend": trie_backend,
        }

    @staticmethod
    def create(params: dict, alphabet: Optional[Alphabet] = None):
        from ..core.file import THFile

        return THFile(
            bucket_capacity=params["capacity"],
            policy=SplitPolicy(**params["policy"]),
            alphabet=alphabet if alphabet is not None else Alphabet(params["alphabet"]),
            # .get(): manifests written before the compact backend
            # existed carry no entry and mean the standard cells.
            trie_backend=params.get("trie_backend", "cells"),
        )

    @staticmethod
    def index_bytes(file) -> bytes:
        return serialize_trie(file.trie)

    @staticmethod
    def attach(file, journal: Optional[WALWriter]) -> None:
        file.journal = journal
        file.store.journal = journal

    @classmethod
    def materialize(
        cls, params: dict, header: dict, index: Optional[bytes], buckets, report
    ):
        from ..core.reconstruct import reconstruct_model

        trie = None
        if index is not None:
            try:
                trie = deserialize_trie(index)
            except StorageError:
                trie = None
        file = cls.create(
            params, alphabet=trie.alphabet if trie is not None else None
        )
        # Checkpoints serialise the standard cell layout regardless of
        # backend; a compact-configured file re-adopts the deserialised
        # trie column-for-column (cell indices and free order preserved).
        backend = type(file.trie)
        _rebuild_bucket_space(file.store, header, buckets)
        if trie is not None:
            file.trie = trie if type(trie) is backend else backend.from_trie(trie)
        else:
            file.trie = backend.from_model(
                reconstruct_model(file.store, file.alphabet)
            )
            report.used_fallback = "reconstruct"
        file._size = sum(len(bucket) for bucket in buckets.values())
        return file


class _MLTHEngine:
    """Adapter for :class:`~repro.core.mlth.MLTHFile`."""

    kind = "mlth"
    uses_buckets = True

    @staticmethod
    def fresh_params(
        capacity: int = 4,
        page_capacity: int = 16,
        policy: Optional[SplitPolicy] = None,
        alphabet: Alphabet = DEFAULT_ALPHABET,
        pin_root: bool = True,
        split_node_pick: str = "balanced",
    ) -> dict:
        policy = policy if policy is not None else SplitPolicy(merge="none")
        return {
            "capacity": capacity,
            "page_capacity": page_capacity,
            "policy": dataclasses.asdict(policy),
            "alphabet": alphabet.digits,
            "pin_root": pin_root,
            "split_node_pick": split_node_pick,
        }

    @staticmethod
    def create(params: dict):
        from ..core.mlth import MLTHFile

        return MLTHFile(
            bucket_capacity=params["capacity"],
            page_capacity=params["page_capacity"],
            policy=SplitPolicy(**params["policy"]),
            alphabet=Alphabet(params["alphabet"]),
            pin_root=params["pin_root"],
            split_node_pick=params["split_node_pick"],
        )

    @staticmethod
    def index_bytes(file) -> bytes:
        spec = {
            "root": file.root_id,
            "pages": {
                str(pid): file.page_disk.peek(pid).to_spec()
                for pid in file._all_page_ids()
            },
        }
        return json.dumps(spec, separators=(",", ":")).encode()

    @staticmethod
    def attach(file, journal: Optional[WALWriter]) -> None:
        file.journal = journal
        file.store.journal = journal

    @classmethod
    def materialize(
        cls, params: dict, header: dict, index: Optional[bytes], buckets, report
    ):
        from ..core.pages import TriePage

        spec = None
        if index is not None:
            try:
                spec = json.loads(index.decode("utf-8"))
                page_specs = {int(k): v for k, v in spec["pages"].items()}
            except (UnicodeDecodeError, json.JSONDecodeError, KeyError, ValueError):
                spec = None
        file = cls.create(params)
        if spec is None:
            # The page hierarchy is gone; the buckets still hold every
            # record, so rebuild the file by re-inserting them.
            report.used_fallback = "reinsert"
            for address in sorted(buckets):
                bucket = buckets[address]
                for key, value in zip(bucket.keys, bucket.values):
                    file.insert(key, value)
            return file
        top = max(page_specs)
        while len(file.page_disk) <= top:
            file.page_pool.allocate(TriePage(0, [], [None]))
        for pid, page_spec in page_specs.items():
            file.page_pool.write(pid, TriePage.from_spec(page_spec))
        if file.pin_root:
            file.page_pool.unpin(file.root_id)
        file.root_id = spec["root"]
        if file.pin_root:
            file.page_pool.pin(file.root_id)
        _rebuild_bucket_space(file.store, header, buckets)
        file._size = sum(len(bucket) for bucket in buckets.values())
        return file


class _BTreeEngine:
    """Adapter for the :class:`~repro.btree.btree.BPlusTree` baseline.

    A B+-tree has no bucket store, so its checkpoints are always full:
    the index section carries the sorted items and recovery rebuilds the
    tree by insertion. There is no secondary source — a corrupt index
    section is unrecoverable and raises :class:`RecoveryError`.
    """

    kind = "btree"
    uses_buckets = False

    @staticmethod
    def fresh_params(
        leaf_capacity: int = 4,
        branch_capacity: Optional[int] = None,
        split_fraction: float = 0.5,
        redistribute: bool = False,
        pin_root: bool = True,
    ) -> dict:
        return {
            "leaf_capacity": leaf_capacity,
            "branch_capacity": branch_capacity,
            "split_fraction": split_fraction,
            "redistribute": redistribute,
            "pin_root": pin_root,
        }

    @staticmethod
    def create(params: dict):
        from ..btree.btree import BPlusTree

        return BPlusTree(
            leaf_capacity=params["leaf_capacity"],
            branch_capacity=params["branch_capacity"],
            split_fraction=params["split_fraction"],
            redistribute=params["redistribute"],
            pin_root=params["pin_root"],
        )

    @staticmethod
    def index_bytes(file) -> bytes:
        items = [[key, value] for key, value in file.items()]
        return json.dumps(items, separators=(",", ":")).encode()

    @staticmethod
    def attach(file, journal: Optional[WALWriter]) -> None:
        file.journal = journal

    @classmethod
    def materialize(
        cls, params: dict, header: dict, index: Optional[bytes], buckets, report
    ):
        if index is None:
            raise RecoveryError(
                "b+-tree checkpoint index is corrupt and a b+-tree has no "
                "bucket headers to reconstruct from"
            )
        try:
            items = json.loads(index.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise RecoveryError(f"corrupt b+-tree checkpoint index: {exc}") from None
        file = cls.create(params)
        for key, value in items:
            file.insert(key, value)
        return file


_ENGINES = {
    _THEngine.kind: _THEngine,
    _MLTHEngine.kind: _MLTHEngine,
    _BTreeEngine.kind: _BTreeEngine,
}


def _rebuild_bucket_space(store, header: dict, buckets) -> None:
    """Recreate a BucketStore's address space and contents (load_bytes idiom)."""
    live = set(header["live"])
    for _ in range(1, header["max_address"] + 1):
        store.allocate()
    for address in range(header["max_address"] + 1):
        if address not in live:
            store.free(address)
    for address, bucket in buckets.items():
        store.write(address, bucket)


# ----------------------------------------------------------------------
# Recovery report
# ----------------------------------------------------------------------
class RecoveryReport:
    """What one recovery pass did (attached as ``DurableFile.last_recovery``)."""

    __slots__ = (
        "engine",
        "checkpoints",
        "buckets_loaded",
        "replayed",
        "torn_tail",
        "used_fallback",
        "lsn",
    )

    def __init__(self) -> None:
        self.engine = ""
        self.checkpoints = 0
        self.buckets_loaded = 0
        self.replayed = 0
        self.torn_tail = False
        #: ``None``, ``'reconstruct'`` (Section-6 trie rebuild) or
        #: ``'reinsert'`` (MLTH page hierarchy rebuilt from records).
        self.used_fallback: Optional[str] = None
        self.lsn = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RecoveryReport(engine={self.engine!r}, chain={self.checkpoints}, "
            f"replayed={self.replayed}, torn_tail={self.torn_tail}, "
            f"fallback={self.used_fallback!r})"
        )


# ----------------------------------------------------------------------
# The durable session
# ----------------------------------------------------------------------
class DurableFile:
    """A crash-safe session over one engine and one :class:`StableStore`.

    Use :meth:`open` — it creates a fresh store (no MANIFEST yet) or
    recovers an existing one. Every mutating call follows the ack
    protocol: apply in memory, append the operation record to the WAL,
    fsync, then return. A call that raises a simulated-crash or device
    error leaves the session *poisoned* (every later call raises
    :class:`StorageError`); reopening the store runs recovery.
    """

    MANIFEST = MANIFEST_NAME

    def __init__(self, *args, **kwargs):
        raise TypeError("use DurableFile.open(stable, engine=..., ...)")

    @classmethod
    def _build(cls, stable, adapter, file, wal, manifest, checkpoint_every, max_chain):
        self = object.__new__(cls)
        self.stable = stable
        self.engine = adapter
        self.file = file
        self.wal = wal
        self.manifest = manifest
        self.checkpoint_every = checkpoint_every
        self.max_chain = max_chain
        self._ops_since_checkpoint = 0
        self._poisoned = False
        self._group_depth = 0
        self._group_appended = False
        self.last_recovery: Optional[RecoveryReport] = None
        #: Request-dedup window (exactly-once distributed retries). Ids
        #: travel inside WAL op records and checkpoint headers, so the
        #: window survives crashes together with the data it guards.
        self.dedup = DedupWindow()
        return self

    # -- opening -------------------------------------------------------
    @classmethod
    def open(
        cls,
        stable: StableStore,
        engine: str = "th",
        checkpoint_every: int = 64,
        max_chain: int = 8,
        **params,
    ) -> DurableFile:
        """Open (recovering) or create a durable file on ``stable``.

        ``params`` configure a *fresh* file (engine constructor options,
        e.g. ``capacity=4, policy=SplitPolicy(...)``); when a MANIFEST
        exists the stored parameters win and ``params`` must be empty or
        match the stored engine.
        """
        if checkpoint_every < 1:
            raise StorageError("checkpoint_every must be at least 1")
        if stable.exists(cls.MANIFEST):
            return cls._recover(stable, checkpoint_every, max_chain, engine)
        if engine not in _ENGINES:
            raise StorageError(f"unknown durable engine {engine!r}")
        # No MANIFEST means no file: any objects present (a crash before
        # the genesis manifest landed, or a deleted manifest) are orphans
        # that must not leak records into the fresh file.
        for stale in stable.names():
            stable.delete(stale)
        adapter = _ENGINES[engine]
        file = adapter.create(adapter.fresh_params(**params))
        wal = WALWriter(stable, "wal-0", next_lsn=1)
        adapter.attach(file, wal)
        manifest = {
            "engine": adapter.kind,
            "params": adapter.fresh_params(**params),
            "chain": [],
            "wal": "wal-0",
            "lsn": 0,
            "next_ckpt": 0,
        }
        self = cls._build(stable, adapter, file, wal, manifest, checkpoint_every, max_chain)
        # The genesis checkpoint makes the empty file durable and writes
        # the first MANIFEST; until it lands, a crash simply yields a
        # store with no file on it.
        self.checkpoint(full=True)
        return self

    @classmethod
    def _recover(cls, stable, checkpoint_every, max_chain, engine_hint):
        report = RecoveryReport()
        span = (
            TRACER.span("recovery") if TRACER.enabled else nullcontext()
        )
        with span:
            try:
                manifest = json.loads(stable.read(cls.MANIFEST).decode("utf-8"))
            except StorageError as exc:
                raise RecoveryError("stable store has no MANIFEST") from exc
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise RecoveryError(f"corrupt MANIFEST: {exc}") from None
            kind = manifest.get("engine")
            adapter = _ENGINES.get(kind)
            if adapter is None:
                raise RecoveryError(f"MANIFEST names unknown engine {kind!r}")
            report.engine = kind
            report.lsn = manifest["lsn"]

            # Chain walk, newest to oldest: the newest checkpoint's
            # header is authoritative for structure and the live set;
            # each live bucket is taken from the newest image holding it.
            chain = list(manifest["chain"])
            if not chain:
                raise RecoveryError("MANIFEST has an empty checkpoint chain")
            newest_header = None
            newest_index = None
            live = set()
            raw_buckets: dict[int, bytes] = {}
            for name in reversed(chain):
                try:
                    data = stable.read(name)
                except StorageError as exc:
                    raise RecoveryError(
                        f"checkpoint {name} is missing"
                    ) from exc
                header, index, ckpt_buckets = decode_checkpoint(data, name)
                if newest_header is None:
                    newest_header = header
                    newest_index = index
                    live = set(header["live"])
                for address, payload in ckpt_buckets.items():
                    if address in live and address not in raw_buckets:
                        raw_buckets[address] = payload
                report.checkpoints += 1
            if adapter.uses_buckets and set(raw_buckets) != live:
                missing = sorted(live - set(raw_buckets))
                raise RecoveryError(
                    f"checkpoint chain is missing live buckets {missing}"
                )
            buckets = {}
            for address, payload in raw_buckets.items():
                try:
                    buckets[address] = deserialize_bucket(payload)
                except StorageError as exc:
                    raise RecoveryError(f"bucket {address}: {exc}") from None
            report.buckets_loaded = len(buckets)

            file = adapter.materialize(
                manifest["params"], newest_header, newest_index, buckets, report
            )

            # REDO: replay committed operations past the checkpoint. The
            # journal is attached in replay mode so the re-executed
            # operations mark their buckets dirty (the next incremental
            # checkpoint must include them) without re-logging records.
            wal_name = manifest["wal"]
            log_image = stable.read(wal_name) if stable.exists(wal_name) else b""
            records, clean = read_records(log_image)
            report.torn_tail = not clean
            top_lsn = max([manifest["lsn"]] + [r.lsn for r in records])
            wal = WALWriter(stable, wal_name, next_lsn=top_lsn + 1)
            adapter.attach(file, wal)
            # The dedup window recovers alongside the data it guards:
            # the checkpointed window is the base, and every replayed
            # record re-records its request id with the re-executed
            # result — so a retry arriving after the crash still hits.
            dedup = DedupWindow.from_spec(newest_header.get("dedup", []))
            wal.suppress_appends = True
            try:
                for record in records:
                    if not record.is_op or record.lsn <= manifest["lsn"]:
                        continue
                    payload = record.payload
                    try:
                        out = _apply_op(
                            file, record.type, payload["k"], payload.get("v")
                        )
                    except TrieHashingError as exc:
                        raise RecoveryError(
                            f"replay of operation LSN {record.lsn} failed: {exc}"
                        ) from exc
                    rid = payload.get("rid")
                    if rid is not None:
                        dedup.record((rid[0], rid[1]), out)
                    report.replayed += 1
            finally:
                wal.suppress_appends = False

            self = cls._build(
                stable, adapter, file, wal, manifest, checkpoint_every, max_chain
            )
            self.dedup = dedup
            self.last_recovery = report
            if TRACER.enabled:
                TRACER.emit(
                    "recovery_done",
                    engine=report.engine,
                    replayed=report.replayed,
                    torn_tail=report.torn_tail,
                    fallback=report.used_fallback,
                )
            # Start a clean generation: this checkpoint discards the torn
            # tail (a fresh WAL segment replaces the old one) and, after a
            # fallback rebuild, re-bases the chain on the rebuilt file.
            self.checkpoint(full=True if report.used_fallback else None)
        return self

    # -- the ack protocol ---------------------------------------------
    def _check_usable(self) -> None:
        if self._poisoned:
            raise StorageError(
                "durable session poisoned by an earlier mid-operation failure; "
                "reopen the store to recover"
            )

    def _commit_barrier(self) -> None:
        """The fsync barrier — deferred inside a :meth:`group_commit`."""
        if self._group_depth:
            self._group_appended = True
        else:
            self.wal.commit()  # the fsync barrier: returning == durable

    def _do(self, rec_type: int, key: str, value=None, rid=None):
        self._check_usable()
        if value is not None and not isinstance(value, str):
            raise StorageError("durable files store str or None values only")
        try:
            out = _apply_op(self.file, rec_type, key, value)
        except (InvalidKeyError, DuplicateKeyError, KeyNotFoundError):
            raise  # rejected before any mutation: nothing to log
        except BaseException:  # repro-lint: disable=TH002 -- fault boundary: any mid-mutation failure (CrashError, device fault) must poison the session before re-raising
            self._poisoned = True
            raise
        try:
            payload = {"k": key} if value is None else {"k": key, "v": value}
            if rid is not None:
                payload["rid"] = [rid[0], rid[1]]
            self.wal.append(rec_type, payload)
            self._commit_barrier()
        except BaseException:  # repro-lint: disable=TH002 -- fault boundary: a failure before the fsync ack leaves WAL state unknown; poison, then re-raise
            self._poisoned = True
            raise
        # Only past the fsync barrier may the id enter the window: a
        # recorded id promises the op is durable, and recovery keeps the
        # promise by replaying the id from the logged record. Inside a
        # group the record is made early — the caller promised to hold
        # every acknowledgement until the group barrier, and an early
        # entry is *required* so a duplicate delivery landing in the
        # same group dedup-hits instead of double-applying.
        self.dedup.record(rid, out)
        self._ops_since_checkpoint += 1
        if self._ops_since_checkpoint >= self.checkpoint_every and not self._group_depth:
            self.checkpoint()
        maybe_audit(self, f"DurableFile op {rec_type} ({key!r})")
        return out

    @contextmanager
    def group_commit(self) -> Iterator[None]:
        """Batch the fsync barrier across several mutating calls.

        Inside the block every :meth:`insert` / :meth:`put` /
        :meth:`delete` / :meth:`put_many` appends its operation records
        but defers the fsync; leaving the block commits the WAL **once**
        for the whole group (and runs any checkpoint the op counter
        triggered meanwhile). This is the server-side write batching of
        the serving tier: one group fsync acknowledges a micro-batch of
        requests.

        The caller owns the ack protocol: no operation in the group may
        be acknowledged to a client before the block exits — the apply
        is in memory and logged, but not yet durable. (The serving
        dispatcher withholds every reply until the group barrier.)

        Groups nest; only the outermost exit commits. The barrier also
        runs when the block exits by exception — operations that
        completed before the failure were applied and logged, so
        flushing them keeps the acknowledged state and the log
        consistent.
        """
        self._check_usable()
        self._group_depth += 1
        try:
            yield self
        finally:
            self._group_depth -= 1
            if self._group_depth == 0:
                flush = self._group_appended
                self._group_appended = False
                if flush:
                    try:
                        self.wal.commit()
                    except BaseException:  # repro-lint: disable=TH002 -- fault boundary: a failed group fsync leaves WAL state unknown; poison, then re-raise
                        self._poisoned = True
                        raise
                if (
                    self._ops_since_checkpoint >= self.checkpoint_every
                    and not self._poisoned
                ):
                    self.checkpoint()

    def insert(
        self,
        key: str,
        value: Optional[str] = None,
        rid: Optional[RequestId] = None,
    ) -> None:
        """Insert a new key (acknowledged-durable on return)."""
        self._do(REC_INSERT, key, value, rid=rid)

    def put(
        self,
        key: str,
        value: Optional[str] = None,
        rid: Optional[RequestId] = None,
    ) -> None:
        """Insert or overwrite (acknowledged-durable on return)."""
        self._do(REC_PUT, key, value, rid=rid)

    def delete(self, key: str, rid: Optional[RequestId] = None) -> object:
        """Delete a key, returning its value (acknowledged on return)."""
        return self._do(REC_DELETE, key, rid=rid)

    # -- reads (no logging) -------------------------------------------
    def get(self, key: str) -> object:
        self._check_usable()
        return self.file.get(key)

    def contains(self, key: str) -> bool:
        self._check_usable()
        return self.file.contains(key)

    def __contains__(self, key: str) -> bool:
        return self.contains(key)

    def __len__(self) -> int:
        return len(self.file)

    def items(self) -> Iterator[tuple[str, object]]:
        self._check_usable()
        return self.file.items()

    def keys(self) -> Iterator[str]:
        self._check_usable()
        return self.file.keys()

    # -- batched operations -------------------------------------------
    def get_many(self, keys: Iterable[str]) -> dict[str, object]:
        """Batched read (no logging); absent keys are simply omitted."""
        self._check_usable()
        batched = getattr(self.file, "get_many", None)
        if batched is not None:
            return batched(keys)
        out: dict[str, object] = {}
        for key in keys:  # engines without a native batch path (btree)
            if self.file.contains(key):
                out[key] = self.file.get(key)
        return out

    def put_many(
        self,
        items: Iterable[tuple[str, Optional[str]]],
        rid: Optional[RequestId] = None,
    ) -> None:
        """Batched durable upsert: one fsync acknowledges the whole batch.

        The batch is applied through the engine's native ``put_many``
        (sorted key order, last duplicate wins), one operation record per
        surviving pair is appended, and the WAL is committed *once* — the
        group fsync is what batching amortises over per-key :meth:`put`
        calls. The records land in the same sorted order the live path
        applied, so a recovery replay rebuilds the acknowledged structure
        exactly. One request id covers the whole batch: a replayed batch
        re-records it per record, converging on the same ``None`` reply.
        """
        self._check_usable()
        pending: list[tuple[str, Optional[str]]] = []
        for key, value in items:
            if value is not None and not isinstance(value, str):
                raise StorageError("durable files store str or None values only")
            pending.append((key, value))
        batched = getattr(self.file, "put_many", None)
        if batched is not None:
            # Canonicalise up front: an invalid key is rejected before
            # any mutation, exactly like the per-key ack protocol.
            validate = self.file.alphabet.validate_key
            last_wins: dict[str, Optional[str]] = {}
            for key, value in pending:
                last_wins[validate(key)] = value
            pending = sorted(last_wins.items())
        if not pending:
            self.dedup.record(rid, None)
            return
        try:
            if batched is not None:
                batched(pending)
            else:
                for key, value in pending:
                    _apply_op(self.file, REC_PUT, key, value)
        except BaseException:  # repro-lint: disable=TH002 -- fault boundary: a partially applied batch (crash, device fault, per-key reject mid-loop) must poison the session before re-raising
            self._poisoned = True
            raise
        try:
            for key, value in pending:
                payload = {"k": key} if value is None else {"k": key, "v": value}
                if rid is not None:
                    payload["rid"] = [rid[0], rid[1]]
                self.wal.append(REC_PUT, payload)
            self._commit_barrier()  # one fsync barrier for the whole batch
        except BaseException:  # repro-lint: disable=TH002 -- fault boundary: a failure before the group fsync leaves WAL state unknown; poison, then re-raise
            self._poisoned = True
            raise
        self.dedup.record(rid, None)
        self._ops_since_checkpoint += len(pending)
        if self._ops_since_checkpoint >= self.checkpoint_every and not self._group_depth:
            self.checkpoint()
        maybe_audit(self, f"DurableFile.put_many({len(pending)} keys)")

    def check(self) -> None:
        """Run the engine's structural invariant check."""
        self.file.check()

    # -- checkpointing -------------------------------------------------
    def checkpoint(self, full: Optional[bool] = None) -> str:
        """Write a checkpoint and truncate the WAL; returns its name.

        Incremental by default (only buckets dirtied since the previous
        checkpoint), full when ``full=True``, when the chain has grown to
        ``max_chain`` entries, or for engines without a bucket store. The
        checkpoint image and the MANIFEST are both written atomically; a
        crash between the two leaves the previous generation intact.
        """
        self._check_usable()
        try:
            return self._checkpoint(full)
        except BaseException:  # repro-lint: disable=TH002 -- fault boundary: a torn checkpoint must poison the session; recovery rebuilds from the previous generation
            self._poisoned = True
            raise

    def _checkpoint(self, full: Optional[bool]) -> str:
        adapter = self.engine
        dirty, _freed = self.wal.drain_dirty()
        chain = list(self.manifest["chain"])
        if full is None:
            full = (
                not adapter.uses_buckets
                or not chain
                or len(chain) >= self.max_chain
            )
        ckpt_id = self.manifest["next_ckpt"]
        name = f"ckpt-{ckpt_id}"
        if adapter.uses_buckets:
            live = self.file.store.live_addresses()
            included = list(live) if full else sorted(set(live) & dirty)
            buckets = [
                (address, serialize_bucket(self.file.store.peek(address)))
                for address in included
            ]
            header = {
                "id": ckpt_id,
                "lsn": self.wal.last_lsn,
                "full": bool(full),
                "engine": adapter.kind,
                "records": len(self.file),
                "live": live,
                "max_address": self.file.store.max_address(),
                "buckets": included,
                "dedup": self.dedup.to_spec(),
            }
        else:
            buckets = []
            header = {
                "id": ckpt_id,
                "lsn": self.wal.last_lsn,
                "full": True,
                "engine": adapter.kind,
                "records": len(self.file),
                "live": [],
                "max_address": 0,
                "buckets": [],
                "dedup": self.dedup.to_spec(),
            }
        image = encode_checkpoint(header, adapter.index_bytes(self.file), buckets)
        self.stable.write_atomic(name, image)

        new_chain = [name] if full else chain + [name]
        old_wal = self.manifest["wal"]
        new_wal = f"wal-{ckpt_id}"
        manifest = {
            "engine": adapter.kind,
            "params": self.manifest["params"],
            "chain": new_chain,
            "wal": new_wal,
            "lsn": self.wal.last_lsn,
            "next_ckpt": ckpt_id + 1,
        }
        self.stable.write_atomic(
            self.MANIFEST, json.dumps(manifest, separators=(",", ":")).encode()
        )
        # The new MANIFEST is durable: everything it no longer references
        # is garbage. A crash inside this cleanup only leaks orphans.
        self.manifest = manifest
        self.wal.name = new_wal
        if old_wal != new_wal and self.stable.exists(old_wal):
            self.stable.delete(old_wal)
        for stale in set(chain) - set(new_chain):
            if self.stable.exists(stale):
                self.stable.delete(stale)
        self._ops_since_checkpoint = 0
        if TRACER.enabled:
            TRACER.emit(
                "checkpoint",
                id=ckpt_id,
                full=bool(full),
                buckets=len(buckets),
                lsn=self.wal.last_lsn,
                chain=len(new_chain),
            )
        return name

    def close(self) -> None:
        """Flush a final checkpoint (a convenience, not required)."""
        self.checkpoint()
