"""The TH* distributed layer: images, routing, IAMs, scale-out.

The centrepiece is the differential oracle: a distributed file over
several shards must be observationally identical to a single-node
:class:`~repro.core.file.THFile` on a long mixed workload — same
values, same exceptions, same ordered scans — while the convergence
criterion holds (a warmed-up client resolves ≥ 90% of its operations
without a server-side forward, measured through :mod:`repro.obs`).
"""

import random

import pytest

from repro import (
    Cluster,
    DuplicateKeyError,
    KeyNotFoundError,
    ShardPolicy,
    THFile,
    TrieImage,
)
from repro.core.alphabet import DEFAULT_ALPHABET
from repro.core.errors import TrieCorruptionError, TrieHashingError
from repro.obs.metrics import MetricsRegistry
from repro.workloads import KeyGenerator


# ======================================================================
# TrieImage
# ======================================================================
class TestTrieImage:
    def test_trivial_image_routes_everything_to_its_shard(self):
        image = TrieImage(DEFAULT_ALPHABET, (), (7,))
        assert len(image) == 1
        for key in ("a", "mzz", "zzzz"):
            assert image.shard_for_key(key) == 7
        assert image.region(0) == (None, None)

    def test_arity_mismatch_rejected(self):
        with pytest.raises(TrieCorruptionError):
            TrieImage(DEFAULT_ALPHABET, ("m",), (0,))

    def test_unsorted_boundaries_rejected(self):
        with pytest.raises(TrieCorruptionError):
            TrieImage(DEFAULT_ALPHABET, ("t", "g"), (0, 1, 2))

    def test_locate_respects_boundary_order(self):
        # A boundary is a prefix cut: "g" covers every key starting
        # with "g", so the gap above it begins at "h".
        image = TrieImage(DEFAULT_ALPHABET, ("g", "t"), (0, 1, 2))
        assert image.shard_for_key("g") == 0
        assert image.shard_for_key("gzz") == 0
        assert image.shard_for_key("h") == 1
        assert image.shard_for_key("tzz") == 1
        assert image.shard_for_key("u") == 2

    def test_split_region_repoints_upper_half(self):
        image = TrieImage(DEFAULT_ALPHABET, ("m",), (0, 1))
        image.split_region(1, "t", 2)
        assert image.boundaries == ["m", "t"]
        assert image.shards == [0, 1, 2]
        assert image.shard_for_key("p") == 1
        assert image.shard_for_key("x") == 2

    def test_split_region_rejects_foreign_boundary(self):
        image = TrieImage(DEFAULT_ALPHABET, ("m",), (0, 1))
        with pytest.raises(TrieCorruptionError):
            image.split_region(0, "t", 2)  # "t" does not cut gap 0

    def test_patch_refines_a_cold_image(self):
        image = TrieImage(DEFAULT_ALPHABET, (), (0,))
        learned = image.patch([("g", "t", 5)])
        assert learned == 2
        assert image.boundaries == ["g", "t"]
        assert image.shard_for_key("m") == 5
        # The open ends keep the stale guess until an IAM covers them.
        assert image.shard_for_key("a") == 0
        assert image.shard_for_key("z") == 0

    def test_patch_open_ended_entries(self):
        image = TrieImage(DEFAULT_ALPHABET, (), (0,))
        assert image.patch([(None, "g", 3)]) == 1
        assert image.patch([("t", None, 9)]) == 1
        assert image.shard_for_key("a") == 3
        assert image.shard_for_key("m") == 0
        assert image.shard_for_key("z") == 9

    def test_patch_is_idempotent(self):
        image = TrieImage(DEFAULT_ALPHABET, (), (0,))
        entries = [("g", "t", 5), (None, "g", 3)]
        image.patch(entries)
        before = (list(image.boundaries), list(image.shards))
        assert image.patch(entries) == 0
        assert (list(image.boundaries), list(image.shards)) == before

    def test_patch_order_independent(self):
        entries = [(None, "g", 1), ("g", "t", 2), ("t", None, 3)]
        a = TrieImage(DEFAULT_ALPHABET, (), (0,))
        b = TrieImage(DEFAULT_ALPHABET, (), (0,))
        a.patch(entries)
        b.patch(list(reversed(entries)))
        assert a.boundaries == b.boundaries
        assert a.shards == b.shards

    def test_copy_is_independent(self):
        image = TrieImage(DEFAULT_ALPHABET, ("m",), (0, 1))
        fork = image.copy()
        fork.patch([("m", "t", 2)])
        assert image.boundaries == ["m"]
        assert fork.boundaries == ["m", "t"]

    def test_proper_prefix_sorts_after_extension(self):
        # Boundary order: the finer cut "ab" precedes the bare "a",
        # which covers the rest of the "a"-prefixed keys.
        image = TrieImage(DEFAULT_ALPHABET, ("ab", "a"), (0, 1, 2))
        assert image.shard_for_key("a") == 0  # "a" min-pads below "ab"
        assert image.shard_for_key("abz") == 0
        assert image.shard_for_key("ac") == 1
        assert image.shard_for_key("az") == 1
        assert image.shard_for_key("b") == 2


# ======================================================================
# The differential oracle
# ======================================================================
def _mixed_workload(f, oracle, ops, seed):
    """Drive ``f`` (distributed) and ``oracle`` (THFile) identically.

    Every op's outcome — value or exception type — must match. Returns
    the number of operations issued.
    """
    rng = random.Random(seed)
    alphabet = "abcdefghijklmnopqrstuvwxyz"
    issued = 0
    known = []
    for _ in range(ops):
        action = rng.random()
        key = "".join(rng.choice(alphabet) for _ in range(rng.randint(1, 8)))
        if action < 0.45:
            try:
                oracle.insert(key, key.upper())
                expected = None
            except DuplicateKeyError:
                expected = DuplicateKeyError
            if expected is None:
                f.insert(key, key.upper())
                known.append(key)
            else:
                with pytest.raises(DuplicateKeyError):
                    f.insert(key, key.upper())
        elif action < 0.6:
            probe = rng.choice(known) if known and rng.random() < 0.7 else key
            assert f.contains(probe) == oracle.contains(probe)
            if oracle.contains(probe):
                assert f.get(probe) == oracle.get(probe)
        elif action < 0.7:
            probe = rng.choice(known) if known and rng.random() < 0.8 else key
            try:
                expected_value = oracle.delete(probe)
                expected = None
            except KeyNotFoundError:
                expected = KeyNotFoundError
            if expected is None:
                assert f.delete(probe) == expected_value
            else:
                with pytest.raises(KeyNotFoundError):
                    f.delete(probe)
        elif action < 0.8:
            oracle.put(key, "v2")
            f.put(key, "v2")
            known.append(key)
        else:
            low, high = sorted([key, key[: max(1, len(key) // 2)]])
            assert list(f.range_items(low, high)) == list(
                oracle.range_items(low, high)
            )
        issued += 1
    return issued


class TestDifferentialOracle:
    def test_distributed_matches_single_node_on_mixed_workload(self):
        cluster = Cluster(
            shards=4,
            bucket_capacity=8,
            shard_policy=ShardPolicy(shard_capacity=64),
        )
        oracle = THFile(bucket_capacity=8)
        f = cluster.client()
        issued = _mixed_workload(f, oracle, ops=5000, seed=20260806)
        assert issued >= 5000
        assert cluster.shard_count() >= 4
        assert len(f) == len(oracle)
        assert list(f.items()) == list(oracle.items())
        cluster.check()

    def test_durable_shards_match_single_node(self):
        cluster = Cluster(
            shards=4,
            bucket_capacity=8,
            shard_policy=ShardPolicy(shard_capacity=48),
            durable=True,
        )
        oracle = THFile(bucket_capacity=8)
        f = cluster.client()
        _mixed_workload(f, oracle, ops=1200, seed=7)
        assert list(f.items()) == list(oracle.items())
        cluster.check()

    def test_two_clients_one_cold_one_warm_agree(self):
        cluster = Cluster(
            shards=4, shard_policy=ShardPolicy(shard_capacity=64)
        )
        oracle = THFile(bucket_capacity=8)
        writer = cluster.client(warm=True)
        keys = KeyGenerator(99).uniform(800)
        for key in keys:
            writer.insert(key)
            oracle.insert(key)
        cold = cluster.client()  # stale one-region image
        for key in keys[::7]:
            assert cold.get(key) == oracle.get(key)
        assert list(cold.items()) == list(oracle.items())
        cluster.check()


# ======================================================================
# Convergence (the acceptance criterion)
# ======================================================================
class TestConvergence:
    def test_cold_client_converges_above_90_percent(self):
        registry = MetricsRegistry()
        cluster = Cluster(
            shards=4,
            shard_policy=ShardPolicy(shard_capacity=96),
            registry=registry,
        )
        keys = KeyGenerator(1234).uniform(2500)
        loader = cluster.client(warm=True)
        for key in keys:
            loader.insert(key)
        assert cluster.shard_count() >= 8  # scale-out actually happened

        client = cluster.client()
        assert len(client.image) == 1  # cold: the trivial image
        # Warm-up: a few hundred lookups teach the partition via IAMs.
        for key in keys[:300]:
            client.contains(key)
        client.reset_window()
        for key in keys[300:2300]:
            client.contains(key)
        assert client.convergence(window=True) >= 0.90
        # The same fact through the obs registry (the reporting path).
        labels = {"client": client.client_id, "routed": "direct"}
        direct = registry.counter("dist_client_ops_total", labels).value
        forwarded = registry.counter(
            "dist_client_ops_total",
            {"client": client.client_id, "routed": "forwarded"},
        ).value
        assert direct / (direct + forwarded) >= 0.90
        assert (
            registry.gauge(
                "dist_client_convergence", {"client": client.client_id}
            ).value
            >= 0.90
        )
        assert client.iam_boundaries > 0

    def test_forward_path_actually_taken_and_counted(self):
        registry = MetricsRegistry()
        cluster = Cluster(
            shards=4,
            shard_policy=ShardPolicy(shard_capacity=10_000),
            registry=registry,
        )
        loader = cluster.client(warm=True)
        for key in KeyGenerator(5).uniform(100):
            loader.insert(key)
        assert loader.ops_forwarded == 0  # a warm image never misses

        cold = cluster.client()
        cold.contains("zzzz")  # trivially routed to the lowest shard
        assert cold.ops_forwarded == 1
        total_forwards = sum(
            inst.value
            for inst in registry.instruments()
            if inst.name == "dist_forwards_total"
        )
        assert total_forwards >= 1
        # The IAM taught the client that region; the retry is direct.
        cold.contains("zzzz")
        assert cold.ops_forwarded == 1


# ======================================================================
# Scale-out and scans
# ======================================================================
class TestScaleOut:
    def test_splits_triggered_by_load_policy(self):
        cluster = Cluster(shards=1, shard_policy=ShardPolicy(shard_capacity=32))
        f = cluster.client()
        for key in KeyGenerator(3).uniform(400):
            f.insert(key)
        assert cluster.shard_count() > 4
        for row in cluster.load_report():
            assert row["load"] <= 1.0
        cluster.check()

    def test_every_region_holds_only_its_keys(self):
        cluster = Cluster(shards=4, shard_policy=ShardPolicy(shard_capacity=40))
        f = cluster.client()
        keys = KeyGenerator(11).variable_length(600)
        for key in keys:
            f.insert(key)
        cluster.check()  # region containment is part of check()
        total = sum(len(s) for s in cluster.coordinator.servers.values())
        assert total == len(keys)

    def test_scan_spans_shards_in_order(self):
        cluster = Cluster(shards=6, shard_policy=ShardPolicy(shard_capacity=50))
        f = cluster.client()
        keys = KeyGenerator(21).uniform(700)
        for key in keys:
            f.insert(key, key[::-1])
        assert cluster.shard_count() >= 6
        got = list(f.range_items())
        assert got == [(k, k[::-1]) for k in sorted(keys)]
        window = sorted(keys)[100:400]
        assert list(f.range_items(window[0], window[-1])) == [
            (k, k[::-1]) for k in window
        ]

    def test_empty_range_and_empty_cluster(self):
        cluster = Cluster(shards=4)
        f = cluster.client()
        assert list(f.range_items()) == []
        assert list(f.range_items("b", "a")) == []
        assert len(f) == 0

    def test_cluster_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            Cluster(shards=0)
        with pytest.raises(ValueError):
            ShardPolicy(shard_capacity=1)
        with pytest.raises(ValueError):
            ShardPolicy(split_threshold=0.0)

    def test_errors_cross_the_wire(self):
        cluster = Cluster(shards=4)
        f = cluster.client()
        f.insert("alpha", "1")
        with pytest.raises(DuplicateKeyError):
            f.insert("alpha", "2")
        with pytest.raises(KeyNotFoundError):
            f.get("missing")
        with pytest.raises(TrieHashingError):
            f.delete("missing")
        assert f.get("alpha") == "1"


# ======================================================================
# Typed errors, message accounting, and IAM robustness (fault-PR fixes)
# ======================================================================
class TestTypedRoutingErrors:
    def test_unknown_shard_raises_typed_error(self):
        from repro.distributed import Op, UnknownShardError

        cluster = Cluster(shards=1)
        with pytest.raises(UnknownShardError):
            cluster.router.client_send(99, Op.get("a"))
        with pytest.raises(UnknownShardError):
            cluster.router.forward(0, 99, Op.get("a"))
        # Part of the TrieHashingError hierarchy, not a bare ValueError.
        assert issubclass(UnknownShardError, TrieHashingError)
        assert not issubclass(UnknownShardError, ValueError)

    def test_unknown_op_kind_raises_protocol_error(self):
        from repro.distributed import Op, ProtocolError

        registry = MetricsRegistry()
        cluster = Cluster(shards=1, registry=registry)
        with pytest.raises(ProtocolError):
            cluster.router.client_send(0, Op("frobnicate", key="a"))
        # The raising handler produced no reply, so none was counted.
        request = registry.counter("dist_messages_total", {"edge": "request"})
        reply = registry.counter("dist_messages_total", {"edge": "reply"})
        assert request.value == 1
        assert reply.value == 0


class TestMessageAccounting:
    def test_forwarded_op_counts_relayed_reply(self):
        # Regression: the owner's reply relayed back through the
        # forwarding server is a delivered message. The old router
        # counted 3 messages for a forwarded op; the true count is 4
        # (request, forward, relayed reply, client-bound reply).
        registry = MetricsRegistry()
        cluster = Cluster(shards=2, registry=registry)
        f = cluster.client()  # cold image: everything routed to shard 0
        owner = cluster.coordinator.owner_of("zzz")
        assert owner != 0  # the op below must need a forward
        f.insert("zzz", "Z")

        def edge(name):
            return registry.counter(
                "dist_messages_total", {"edge": name}
            ).value

        assert edge("request") == 1
        assert edge("forward") == 1
        assert edge("reply") == 2
        assert cluster.router.messages == 4

    def test_direct_op_counts_two_messages(self):
        registry = MetricsRegistry()
        cluster = Cluster(shards=2, registry=registry)
        f = cluster.client(warm=True)
        f.insert("apple", "A")
        assert cluster.router.messages == 2
        assert cluster.router.forwards == 0


class TestAbsorbAccounting:
    def test_error_reply_does_not_count_toward_convergence(self):
        from repro.distributed import Reply

        cluster = Cluster(shards=2)
        f = cluster.client()
        reply = Reply(
            error=KeyNotFoundError("nope"),
            iam=[("g", "t", 1)],
            forwards=1,
        )
        f._absorb(reply)
        # The failed op is not a resolved routing sample...
        assert f.ops_total == 0
        assert f.window_total == 0
        assert f.ops_forwarded == 0
        # ...but its IAM still teaches the authoritative cuts.
        assert f.iam_boundaries == 2
        assert f.image.shard_for_key("m") == 1

    def test_end_to_end_failed_ops_excluded(self):
        cluster = Cluster(shards=1)
        f = cluster.client()
        f.insert("apple", "A")
        with pytest.raises(DuplicateKeyError):
            f.insert("apple", "B")
        with pytest.raises(KeyNotFoundError):
            f.get("missing")
        assert f.ops_total == 1  # only the successful insert resolved
        assert f.convergence() == 1.0


class TestIAMRobustness:
    def test_duplicate_entries_in_one_batch_are_safe(self):
        image = TrieImage(DEFAULT_ALPHABET, (), (0,))
        entry = ("g", "t", 5)
        assert image.patch([entry, entry, entry]) == 2
        assert image.boundaries == ["g", "t"]
        assert image.patch([entry, entry]) == 0
        assert image.boundaries == ["g", "t"]
        assert image.shard_for_key("m") == 5

    def test_redelivered_stale_iam_never_regresses_boundaries(self):
        # A duplicated (redelivered) coarse IAM arriving after finer
        # cuts may repoint sub-gaps at a stale shard — another forward
        # fixes that — but it must never remove learned boundaries.
        image = TrieImage(DEFAULT_ALPHABET, (), (0,))
        image.patch([("g", "m", 1), ("m", "t", 2)])
        fine = list(image.boundaries)
        assert image.patch([("g", "t", 1)]) == 0  # stale, coarser view
        assert image.boundaries == fine
        image.check()
        # Replaying the fine entries again restores exact pointers.
        image.patch([("g", "m", 1), ("m", "t", 2)])
        assert image.shard_for_key("k") == 1
        assert image.shard_for_key("p") == 2

    def test_reordered_iams_converge_to_same_image(self):
        entries = [(None, "g", 1), ("g", "m", 2), ("m", "t", 3), ("t", None, 4)]
        forward_order = TrieImage(DEFAULT_ALPHABET, (), (0,))
        shuffled = TrieImage(DEFAULT_ALPHABET, (), (0,))
        forward_order.patch(entries)
        order = list(entries)
        random.Random(9).shuffle(order)
        for entry in order:
            shuffled.patch([entry])  # one IAM per reply, odd order
        assert forward_order.boundaries == shuffled.boundaries
        assert forward_order.shards == shuffled.shards


# ======================================================================
# The wire boundary (codec at the in-process fabric)
# ======================================================================
class TestWireBoundary:
    def test_inserted_value_cannot_be_mutated_through_the_caller(self):
        # The fabric serializes every op: the server stores a decoded
        # copy, so mutating the caller's object after the insert must
        # not reach the shard (the aliasing bug the codec eliminates).
        cluster = Cluster(shards=1)
        f = cluster.client()
        value = ["shared", {"nested": 1}]
        f.insert("alias", value)
        value.append("mutated-after-send")
        value[1]["nested"] = 999
        assert f.get("alias") == ["shared", {"nested": 1}]

    def test_read_value_cannot_be_mutated_back_into_the_store(self):
        cluster = Cluster(shards=1)
        f = cluster.client()
        f.insert("alias", {"count": 0})
        got = f.get("alias")
        got["count"] = 41
        got["extra"] = "nope"
        assert f.get("alias") == {"count": 0}

    def test_scan_records_do_not_alias_the_store(self):
        cluster = Cluster(shards=1)
        f = cluster.client()
        f.insert("alias", [1, 2, 3])
        for _, value in f.range_items():
            value.append(4)
        assert f.get("alias") == [1, 2, 3]


# ======================================================================
# Scan error paths and mid-scan scale-out
# ======================================================================
class TestScanEdgeCases:
    def test_errored_scan_leg_is_reraised_client_side(self):
        from repro.core.errors import StorageError

        cluster = Cluster(shards=2)
        f = cluster.client(warm=True)
        for key in ["apple", "bird", "cat", "xeno", "yak", "zebra"]:
            f.insert(key, key.upper())
        poisoned = cluster.coordinator.servers[1]
        original = poisoned.handle

        def failing(op):
            reply = original(op)
            if op.kind == "scan":
                reply.records = []
                reply.error = StorageError("leg exploded")
            return reply

        poisoned.handle = failing
        scan = f.range_items()
        lower = [next(scan) for _ in range(3)]  # shard 0's leg is fine
        assert [k for k, _ in lower] == ["apple", "bird", "cat"]
        with pytest.raises(StorageError, match="leg exploded"):
            next(scan)

    def test_mid_scan_split_completes_and_teaches_the_image(self):
        # A scan leg per region: split the upper shard after the scan
        # started. The continuation leg is addressed with the stale
        # image, forwarded by the old owner, and its IAM teaches the
        # client the new cut — the full ordered result stays exact.
        cluster = Cluster(
            shards=2, shard_policy=ShardPolicy(shard_capacity=10_000)
        )
        loader = cluster.client(warm=True)
        keys = sorted(set(KeyGenerator(seed=17).uniform(80, length=4)))
        for key in keys:
            loader.insert(key, key.upper())
        f = cluster.client(warm=True)
        scan = f.range_items()
        first = next(scan)  # pulls shard 0's whole leg
        assert cluster.coordinator.split_shard(1)
        rest = list(scan)
        got = [first] + rest
        assert [k for k, _ in got] == keys
        assert [v for _, v in got] == [k.upper() for k in keys]
        # The continuation forwarded exactly once and taught the cut.
        new_shard = max(cluster.coordinator.servers)
        assert new_shard in f.image.shards
        assert f.ops_forwarded >= 1
