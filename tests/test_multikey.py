"""Tests for the multikey extension (interleaving, rectangle queries,
and the grid-directory comparison)."""

import pytest

from repro import LOWERCASE, DuplicateKeyError, InvalidKeyError
from repro.multikey import GridDirectoryModel, Interleaver, MultikeyTHFile
from repro.workloads import KeyGenerator


class TestInterleaver:
    def test_compose_round_robin(self):
        inter = Interleaver((3, 3))
        assert inter.compose(("abc", "xyz")) == "axbycz"

    def test_uneven_widths(self):
        inter = Interleaver((4, 2))
        # layout: a0 b0 a1 b1 a2 a3
        assert inter.compose(("wxyz", "pq")) == "wpxqyz"

    def test_padding_and_canonicalisation(self):
        inter = Interleaver((3, 3))
        key = inter.compose(("ab", "x"))
        # 'ab ' interleaved with 'x  ' = 'axb    ' -> canonical 'axb'
        assert key == "axb"
        assert inter.decompose(key) == ("ab", "x")

    def test_decompose_roundtrip(self, generator):
        inter = Interleaver((5, 3, 4))
        rng_keys = generator.uniform(100, length=3)
        for i in range(0, 99, 3):
            triple = (rng_keys[i][:5], rng_keys[i + 1][:3], rng_keys[i + 2][:4])
            assert inter.decompose(inter.compose(triple)) == tuple(
                t.rstrip(" ") for t in triple
            )

    def test_width_overflow_rejected(self):
        inter = Interleaver((2, 2))
        with pytest.raises(InvalidKeyError):
            inter.compose(("abc", "x"))

    def test_arity_checked(self):
        inter = Interleaver((2, 2))
        with pytest.raises(InvalidKeyError):
            inter.compose(("ab",))

    def test_foreign_digits_rejected(self):
        inter = Interleaver((2, 2))
        with pytest.raises(InvalidKeyError):
            inter.compose(("A!", "aa"))

    def test_invalid_widths(self):
        with pytest.raises(InvalidKeyError):
            Interleaver(())
        with pytest.raises(InvalidKeyError):
            Interleaver((0, 2))

    def test_monotone_per_coordinate(self):
        # The z-bounding prerequisite: raising one coordinate never
        # lowers the composite key.
        inter = Interleaver((3, 3))
        base = inter.compose(("abc", "mno"))
        higher = inter.compose(("abd", "mno"))
        assert higher > base

    def test_corners(self):
        inter = Interleaver((2, 2), LOWERCASE)
        low = inter.low_corner(["b", "c"])
        high = inter.high_corner(["b", "c"])
        assert low <= high
        assert high.endswith("z") or "z" in high


class TestMultikeyFile:
    def build(self, n=300, seed=5):
        gen = KeyGenerator(seed)
        a = gen.uniform(n, length=4, salt=1)
        b = gen.uniform(n, length=4, salt=2)
        f = MultikeyTHFile((4, 4), bucket_capacity=8)
        pts = list(zip(a, b))
        for i, p in enumerate(pts):
            f.insert(p, i)
        return f, pts

    def test_exact_match(self):
        f, pts = self.build()
        for i, p in enumerate(pts[:50]):
            assert f.get(p) == i
            assert f.contains(p)
        assert not f.contains(("zzzz", "zzzz"))

    def test_duplicate_and_delete(self):
        f, pts = self.build(50)
        with pytest.raises(DuplicateKeyError):
            f.insert(pts[0])
        assert f.delete(pts[0]) == 0
        assert not f.contains(pts[0])
        assert len(f) == 49

    def test_items_decomposed(self):
        f, pts = self.build(100)
        seen = {values for values, _ in f.items()}
        assert seen == set(pts)

    def test_rectangle_full_space(self):
        f, pts = self.build(200)
        hits = list(f.rectangle((None, None), (None, None)))
        assert len(hits) == 200

    def test_rectangle_matches_bruteforce(self):
        f, pts = self.build(300)
        lows, highs = ("c", "f"), ("m", "s")

        def inside(p):
            return lows[0] <= p[0] <= highs[0] + "zzzz" and (
                lows[1] <= p[1] <= highs[1] + "zzzz"
            )

        expected = {p for p in pts if inside(p)}
        got = {values for values, _ in f.rectangle(lows, highs)}
        assert got == expected

    def test_rectangle_half_open(self):
        f, pts = self.build(300)
        got = {v for v, _ in f.rectangle(("m", None), (None, None))}
        expected = {p for p in pts if p[0] >= "m"}
        assert got == expected

    def test_rectangle_stats_selectivity(self):
        f, pts = self.build(300)
        matches, scanned = f.rectangle_stats(("c", "c"), ("d", "d"))
        assert matches <= scanned
        # The z scan must not degenerate to a full-file scan for a
        # small box.
        assert scanned < len(pts)

    def test_check(self):
        f, _ = self.build(150)
        f.check()

    def test_directory_size_is_trie_cells(self):
        f, _ = self.build(200)
        assert f.directory_size() == f.file.trie_size()


class TestGridModel:
    def test_uniform_data_modest_directory(self, generator):
        model = GridDirectoryModel(2, bucket_capacity=8)
        a = generator.uniform(300, length=4, salt=1)
        b = generator.uniform(300, length=4, salt=2)
        for p in zip(a, b):
            model.insert(p)
        assert len(model) == 300
        assert model.directory_size() >= model.occupied_cells()

    def test_skewed_data_directory_explodes_relative_to_trie(self, generator):
        # The paper's expectation: under skew, the grid directory's
        # cross product far outgrows the trie's cell count (one split
        # line slices the whole orthogonal slab; a trie split is local).
        a = generator.skewed(600, length=4, concentration=3.0, salt=1)
        b = generator.skewed(600, length=4, concentration=3.0, salt=2)
        points = sorted(set(zip(a, b)))
        grid = GridDirectoryModel(2, bucket_capacity=4)
        trie = MultikeyTHFile((4, 4), bucket_capacity=4)
        for p in points:
            grid.insert(p)
            trie.insert(p)
        assert grid.directory_size() > 2.5 * trie.directory_size()
        # And much of the grid directory is empty cells:
        assert grid.occupied_cells() < grid.directory_size()

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            GridDirectoryModel(0)
        model = GridDirectoryModel(2)
        with pytest.raises(ValueError):
            model.insert(("a",))
