"""The registered audits: every structure ``check()`` behind one API.

Each audit wraps the structure's existing invariant sweep (converting
raised :class:`AssertionError` / :class:`TrieHashingError` into
violations), adds cheap shape checks at ``BASIC`` level, and redundant
cross-verification at ``PARANOID``. Structure imports happen lazily
inside the audit bodies so registering the whole catalogue costs
nothing at import time and creates no package cycles.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from typing import Optional

from ..core.errors import TrieHashingError
from .framework import AuditLevel, Severity, Violation, register_audit

__all__ = ["audit_manifest"]


def _checked(
    fn: Callable[[], object],
    code: str,
    target: str,
    severity: Severity = Severity.CRITICAL,
) -> Optional[Violation]:
    """Run a check callable; a raised invariant error becomes a finding."""
    try:
        fn()
    except (AssertionError, TrieHashingError) as exc:
        return Violation(
            code=code,
            severity=severity,
            message=str(exc) or type(exc).__name__,
            target=target,
        )
    return None


def _emit(v: Optional[Violation]) -> Iterator[Violation]:
    if v is not None:
        yield v


# ----------------------------------------------------------------------
# Core structures
# ----------------------------------------------------------------------
@register_audit("repro.core.trie.Trie")
def audit_trie(obj, level: AuditLevel) -> Iterator[Violation]:
    if obj.cells.live_count() < 1:
        yield Violation(
            "AUD-TRIE-EMPTY",
            Severity.ERROR,
            "trie has no live cells (even an empty file keeps its root)",
            "Trie",
        )
    if level >= AuditLevel.FULL:
        yield from _emit(_checked(obj.check, "AUD-TRIE-STRUCT", "Trie"))


@register_audit("repro.core.compact.CompactTrie")
def audit_compact_trie(obj, level: AuditLevel) -> Iterator[Violation]:
    # Most-specific wins in the registry, so this audit *replaces* the
    # plain Trie audit for compact-backed files — rerun it, then add
    # the column-layout invariants the flat representation introduces.
    yield from audit_trie(obj, level)
    if level >= AuditLevel.FULL:
        yield from _emit(
            _checked(obj.check_columns, "AUD-COMPACT-COLUMNS", "CompactTrie")
        )
    if level >= AuditLevel.PARANOID:
        # Redundant cross-check: the raw column walk must agree with the
        # reference Algorithm A1 descent at every boundary of the
        # realised model (the points where a drifted column would bite).
        model = obj.to_model()
        for probe in [""] + list(model.boundaries):
            if obj.lookup(probe) != obj.search(probe).ptr:
                yield Violation(
                    "AUD-COMPACT-LOOKUP",
                    Severity.CRITICAL,
                    f"column walk maps {probe!r} to {obj.lookup(probe)} "
                    f"but the A1 descent says {obj.search(probe).ptr}",
                    "CompactTrie",
                )
                break


@register_audit("repro.core.boundaries.BoundaryModel")
def audit_boundary_model(obj, level: AuditLevel) -> Iterator[Violation]:
    if len(obj.children) != len(obj.boundaries) + 1:
        yield Violation(
            "AUD-MODEL-ARITY",
            Severity.CRITICAL,
            f"{len(obj.children)} children for {len(obj.boundaries)} boundaries",
            "BoundaryModel",
        )
        return
    if level >= AuditLevel.FULL:
        yield from _emit(
            _checked(obj.check, "AUD-MODEL-STRUCT", "BoundaryModel")
        )


@register_audit("repro.core.file.THFile")
def audit_thfile(obj, level: AuditLevel) -> Iterator[Violation]:
    yield from _audit_thfile_common(obj, level, target="THFile")
    if level >= AuditLevel.PARANOID:
        yield from _thfile_reconstruction_oracle(obj)


def _audit_thfile_common(obj, level: AuditLevel, target: str) -> Iterator[Violation]:
    if len(obj) < 0:  # defensive: a broken counter, not a legal state
        yield Violation(
            "AUD-FILE-SIZE", Severity.ERROR, "negative record count", target
        )
    if obj.bucket_count() < 1:
        yield Violation(
            "AUD-FILE-BUCKETS",
            Severity.ERROR,
            "a file always keeps at least one bucket",
            target,
        )
    if level >= AuditLevel.FULL:
        yield from _emit(_checked(obj.check, "AUD-FILE-STRUCT", target))


def _thfile_reconstruction_oracle(obj) -> Iterator[Violation]:
    """Section-6 cross-check: headers alone must re-derive the mapping."""
    from ..core.reconstruct import reconstruct_model

    try:
        rebuilt = reconstruct_model(obj.store, obj.alphabet)
    except (AssertionError, TrieHashingError) as exc:
        yield Violation(
            "AUD-FILE-RECONSTRUCT",
            Severity.CRITICAL,
            f"bucket headers do not reconstruct: {exc}",
            "THFile",
        )
        return
    model = obj.trie.to_model()
    for address in obj.store.live_addresses():
        for key in obj.store.peek(address).keys:
            if rebuilt.lookup(key) != model.lookup(key):
                yield Violation(
                    "AUD-FILE-RECONSTRUCT",
                    Severity.CRITICAL,
                    f"key {key!r}: reconstructed mapping "
                    f"{rebuilt.lookup(key)} != trie mapping {model.lookup(key)}",
                    "THFile",
                )
                return


@register_audit("repro.core.overflow.OverflowTHFile")
def audit_overflow_file(obj, level: AuditLevel) -> Iterator[Violation]:
    yield from _audit_thfile_common(obj, level, target="OverflowTHFile")
    chains = set(obj._overflow.values())
    if len(chains) != len(obj._overflow):
        yield Violation(
            "AUD-OVF-SHARED",
            Severity.CRITICAL,
            "two primaries share one overflow chain bucket",
            "OverflowTHFile",
        )


@register_audit("repro.core.mlth.MLTHFile")
def audit_mlth(obj, level: AuditLevel) -> Iterator[Violation]:
    if obj.page_capacity < 2:
        yield Violation(
            "AUD-MLTH-CAPACITY",
            Severity.ERROR,
            f"page capacity {obj.page_capacity} cannot hold a split",
            "MLTHFile",
        )
    if level >= AuditLevel.FULL:
        yield from _emit(_checked(obj.check, "AUD-MLTH-STRUCT", "MLTHFile"))
    if level >= AuditLevel.PARANOID:
        for pid in obj._all_page_ids():
            page = obj.page_disk.peek(pid)
            if page.cell_count > obj.page_capacity:
                yield Violation(
                    "AUD-MLTH-PAGE-OVER",
                    Severity.WARNING,
                    f"page {pid} holds {page.cell_count} cells "
                    f"(capacity {obj.page_capacity})",
                    "MLTHFile",
                )


@register_audit("repro.core.image.TrieImage")
def audit_trie_image(obj, level: AuditLevel) -> Iterator[Violation]:
    if len(obj.shards) != len(obj.boundaries) + 1:
        yield Violation(
            "AUD-IMAGE-ARITY",
            Severity.CRITICAL,
            f"{len(obj.shards)} shards for {len(obj.boundaries)} cuts",
            "TrieImage",
        )
        return
    if level >= AuditLevel.FULL:
        yield from _emit(_checked(obj.check, "AUD-IMAGE-STRUCT", "TrieImage"))


@register_audit("repro.multikey.mkfile.MultikeyTHFile")
def audit_multikey(obj, level: AuditLevel) -> Iterator[Violation]:
    if level >= AuditLevel.FULL:
        yield from _emit(
            _checked(obj.check, "AUD-MK-STRUCT", "MultikeyTHFile")
        )


# ----------------------------------------------------------------------
# B+-tree baseline
# ----------------------------------------------------------------------
@register_audit("repro.btree.btree.BPlusTree")
def audit_btree(obj, level: AuditLevel) -> Iterator[Violation]:
    if len(obj) < 0:
        yield Violation(
            "AUD-BTREE-SIZE", Severity.ERROR, "negative record count", "BPlusTree"
        )
    if level >= AuditLevel.FULL:
        yield from _emit(_checked(obj.check, "AUD-BTREE-STRUCT", "BPlusTree"))


# ----------------------------------------------------------------------
# Storage layer
# ----------------------------------------------------------------------
@register_audit("repro.storage.dedup.DedupWindow")
def audit_dedup_window(obj, level: AuditLevel) -> Iterator[Violation]:
    if obj.limit < 1:
        yield Violation(
            "AUD-DEDUP-LIMIT",
            Severity.ERROR,
            f"window limit {obj.limit} below 1",
            "DedupWindow",
        )
    if len(obj) > obj.limit:
        yield Violation(
            "AUD-DEDUP-OVERFULL",
            Severity.ERROR,
            f"{len(obj)} entries exceed the {obj.limit}-entry bound",
            "DedupWindow",
        )
    if level >= AuditLevel.FULL:
        for rid, _ in obj._entries.items():
            if (
                not isinstance(rid, tuple)
                or len(rid) != 2
                or not all(isinstance(part, int) for part in rid)
            ):
                yield Violation(
                    "AUD-DEDUP-RID",
                    Severity.ERROR,
                    f"malformed request id {rid!r}",
                    "DedupWindow",
                )
                break
    if level >= AuditLevel.PARANOID:
        clone = type(obj).from_spec(obj.to_spec(), limit=obj.limit)
        if clone._entries != obj._entries:
            yield Violation(
                "AUD-DEDUP-CODEC",
                Severity.CRITICAL,
                "to_spec/from_spec round-trip changed the window "
                "(checkpointed windows would recover differently)",
                "DedupWindow",
            )


#: Keys every WAL MANIFEST must carry, with their expected types.
_MANIFEST_SCHEMA = (
    ("engine", str),
    ("params", dict),
    ("chain", list),
    ("wal", str),
    ("lsn", int),
    ("next_ckpt", int),
)


def audit_manifest(manifest: object) -> list:
    """Audit a durable-session MANIFEST dict; returns violations.

    Exposed as a function (not a registered class audit) because the
    manifest is a plain dict; :func:`audit` reaches it through the
    :class:`~repro.storage.recovery.DurableFile` audit.
    """
    found = []
    if not isinstance(manifest, dict):
        return [
            Violation(
                "AUD-MANIFEST-TYPE",
                Severity.CRITICAL,
                f"manifest is {type(manifest).__name__}, not dict",
                "MANIFEST",
            )
        ]
    for key, expected in _MANIFEST_SCHEMA:
        if key not in manifest:
            found.append(
                Violation(
                    "AUD-MANIFEST-KEY",
                    Severity.CRITICAL,
                    f"missing required key {key!r}",
                    "MANIFEST",
                )
            )
        elif not isinstance(manifest[key], expected):
            found.append(
                Violation(
                    "AUD-MANIFEST-TYPE",
                    Severity.CRITICAL,
                    f"key {key!r} is {type(manifest[key]).__name__}, "
                    f"expected {expected.__name__}",
                    "MANIFEST",
                )
            )
    if not found:
        if manifest["lsn"] < 0:
            found.append(
                Violation(
                    "AUD-MANIFEST-LSN",
                    Severity.CRITICAL,
                    f"negative LSN {manifest['lsn']}",
                    "MANIFEST",
                )
            )
        if manifest["next_ckpt"] < len(manifest["chain"]):
            found.append(
                Violation(
                    "AUD-MANIFEST-CHAIN",
                    Severity.ERROR,
                    f"next_ckpt {manifest['next_ckpt']} below chain "
                    f"length {len(manifest['chain'])}",
                    "MANIFEST",
                )
            )
    return found


@register_audit("repro.storage.recovery.DurableFile")
def audit_durable_file(obj, level: AuditLevel) -> Iterator[Violation]:
    if obj._poisoned:
        yield Violation(
            "AUD-DURABLE-POISONED",
            Severity.WARNING,
            "session poisoned by a mid-operation failure; reopen to recover",
            "DurableFile",
        )
        return  # the in-memory image is not claimed consistent
    yield from audit_manifest(obj.manifest)
    if level == AuditLevel.FULL:
        yield from _emit(
            _checked(obj.check, "AUD-DURABLE-STRUCT", "DurableFile")
        )
    if level >= AuditLevel.PARANOID:
        # Defer to the wrapped engine's own audit (it reruns the full
        # sweep plus its paranoid extras) and cross-check the dedup
        # window that rides the durable state.
        from .framework import find_audit

        inner = find_audit(type(obj.file))
        if inner is not None:
            yield from inner(obj.file, level)
        else:
            yield from _emit(
                _checked(obj.check, "AUD-DURABLE-STRUCT", "DurableFile")
            )
        yield from audit_dedup_window(obj.dedup, level)


# ----------------------------------------------------------------------
# Distributed layer
# ----------------------------------------------------------------------
@register_audit("repro.distributed.coordinator.Coordinator")
def audit_coordinator(obj, level: AuditLevel) -> Iterator[Violation]:
    down = [sid for sid, srv in obj.servers.items() if srv.down]
    if down:
        # A crashed durable server has lost volatile state by design;
        # sweeping its records would read a poisoned session. Surface
        # the skip instead of failing on a legal mid-outage state.
        yield Violation(
            "AUD-DIST-SKIPPED",
            Severity.WARNING,
            f"full sweep skipped: shards {sorted(down)} are down",
            "Coordinator",
        )
        yield from _emit(
            _checked(obj.model.check, "AUD-DIST-IMAGE", "Coordinator")
        )
        return
    if level >= AuditLevel.FULL:
        yield from _emit(_checked(obj.check, "AUD-DIST-STRUCT", "Coordinator"))
    else:
        yield from _emit(
            _checked(obj.model.check, "AUD-DIST-IMAGE", "Coordinator")
        )


@register_audit("repro.distributed.coordinator.Cluster")
def audit_cluster(obj, level: AuditLevel) -> Iterator[Violation]:
    if obj.shard_count() < 1:
        yield Violation(
            "AUD-DIST-EMPTY",
            Severity.CRITICAL,
            "cluster has no shards",
            "Cluster",
        )
        return
    yield from audit_coordinator(obj.coordinator, level)
