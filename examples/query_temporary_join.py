#!/usr/bin/env python
"""Query temporaries: a sort-merge join over compact THCL files.

The paper motivates compact files with "the processing of selections
and joins ... or are thrown away at the end of a transaction". This
example plays a miniature query processor:

1. two base relations (orders and customers) live in ordinary ~70%
   files;
2. a selection over each is materialised into a *temporary* 100%-loaded
   THCL file (sorted input -> d = 0 compact build);
3. the join runs as a sort-merge over two cursors — order-preserving
   hashing makes merge joins natural;
4. the temporaries are dropped.

Run:  python examples/query_temporary_join.py
"""

from repro import Cursor, SplitPolicy, THFile
from repro.workloads import KeyGenerator


def build_base_relations():
    gen = KeyGenerator(2024)
    customer_ids = gen.uniform(3000, length=5)
    customers = THFile(bucket_capacity=20)
    for cid in customer_ids:
        customers.insert(cid, {"tier": "gold" if cid[0] < "f" else "basic"})
    orders = THFile(bucket_capacity=20)
    for i, cid in enumerate(customer_ids * 2):  # two orders per customer
        # Order key: customer id + sequence digit -> joins on the prefix.
        orders.insert(cid + ("a" if i < len(customer_ids) else "b"),
                      {"amount": (i % 97) + 1})
    return customers, orders


def materialise(selection, capacity=20):
    """Sorted stream -> compact temporary (a = 100%)."""
    temp = THFile(bucket_capacity=capacity, policy=SplitPolicy.thcl_ascending(0))
    for key, value in selection:
        temp.insert(key, value)
    return temp


def main() -> None:
    customers, orders = build_base_relations()
    print(f"base relations: {len(customers)} customers "
          f"(load {customers.load_factor():.0%}), {len(orders)} orders "
          f"(load {orders.load_factor():.0%})")

    # --- Selections into compact temporaries ---------------------------
    gold = materialise(
        (k, v) for k, v in customers.items() if v["tier"] == "gold"
    )
    big_orders = materialise(
        (k, v) for k, v in orders.items() if v["amount"] > 60
    )
    print(f"temporaries: {len(gold)} gold customers at "
          f"{gold.load_factor():.0%} load, {len(big_orders)} big orders at "
          f"{big_orders.load_factor():.0%} load")

    # --- Sort-merge join over cursors -----------------------------------
    left, right = Cursor(gold), Cursor(big_orders)
    joined = 0
    ok = left.first() and right.first()
    while ok and left.valid and right.valid:
        cid, order_key = left.key(), right.key()
        if order_key.startswith(cid):
            joined += 1
            ok = right.next()
        elif order_key[: len(cid)] < cid:
            ok = right.next()
        else:
            ok = left.next()
    print(f"merge join produced {joined} (gold customer, big order) pairs")

    # --- Range-scan cost: why the compact temporary pays off ------------
    reads_before = big_orders.store.disk.stats.reads
    scanned = sum(1 for _ in big_orders.items())
    compact_reads = big_orders.store.disk.stats.reads - reads_before
    print(f"scanning the {scanned}-record temporary took {compact_reads} "
          f"bucket reads (100% packed)")

    # --- Drop the temporaries (end of transaction) ----------------------
    del gold, big_orders
    print("temporaries dropped - base relations untouched")


if __name__ == "__main__":
    main()
