"""English-language key sets.

``MOST_USED_WORDS`` is the 31-word sequence of the paper's running
example (Fig 1), in insertion order — the most used English words per
/KNU73/. :func:`synthetic_dictionary` substitutes for the 20,000-word
UNIX dictionary the paper names as a validation corpus: a seeded
letter-bigram (Markov) generator trained on a small embedded English
sample, so word-prefix sharing — the property that drives split-string
length and trie size — resembles natural language rather than uniform
noise.
"""

from __future__ import annotations

import random
from collections import defaultdict

__all__ = ["MOST_USED_WORDS", "synthetic_dictionary"]

#: Fig 1(a): the example file's insertions, in order. The underlined
#: insertions of the figure (those that trigger splits) fall out of the
#: algorithm itself.
MOST_USED_WORDS = [
    "the", "of", "and", "to", "a", "in", "that", "is", "i", "it",
    "for", "as", "with", "was", "his", "he", "be", "not", "by", "but",
    "have", "you", "which", "are", "on", "or", "her", "had", "at",
    "from", "this",
]

#: Training sample for the bigram model: common English words beyond the
#: 31 of Fig 1, enough to give realistic letter-transition statistics.
_TRAINING_WORDS = """
about above across after again against all almost alone along already
also although always among anything appear around because become before
begin behind being believe below between beyond both bring business
call came can change character children come company consider could
country course day develop different does down during each early earth
enough even ever every example experience face fact family far father
feel few find first follow form found four friend general girl give
good govern great group grow hand hard head hear help here high himself
history hold home house however hundred idea important increase indeed
interest into just keep kind know large last late lead learn leave left
letter life light like line little live long look made make man many
matter mean might mile more most mother mountain move much must name
nation near need never new next night nothing now number often old once
only open order other our over own part people perhaps place plant
point possible power present problem produce public put question quite
rather read real really right river road room said same saw say school
second see seem sentence set several shall she should show side since
small social some something sometimes song soon sound spell stand start
state still stop story study such sure system take talk tell than their
them then there these they thing think those though thought three
through time together too took toward tree try turn under until upon
use very walk want watch water way week well went were what when where
while white whole why will with within without word work world would
write year young your
""".split()


def _bigram_model() -> dict[str, list[str]]:
    """Letter-transition table including word start ('^') and end ('$')."""
    model: dict[str, list[str]] = defaultdict(list)
    for word in _TRAINING_WORDS + MOST_USED_WORDS:
        previous = "^"
        for ch in word:
            model[previous].append(ch)
            previous = ch
        model[previous].append("$")
    return model


def synthetic_dictionary(
    count: int = 20000, seed: int = 1981, min_length: int = 2, max_length: int = 12
) -> list[str]:
    """A deterministic English-like word list, sorted and duplicate-free.

    Substitutes for the UNIX ``/usr/dict/words`` corpus (see DESIGN.md):
    words are sampled from a letter-bigram chain, so common prefixes are
    shared with natural-language frequency. ~``count`` unique words are
    returned in sorted order.
    """
    model = _bigram_model()
    rng = random.Random(seed)
    words = set()
    attempts = 0
    limit = count * 200
    while len(words) < count and attempts < limit:
        attempts += 1
        out = []
        state = "^"
        while len(out) < max_length:
            nxt = rng.choice(model[state])
            if nxt == "$":
                break
            out.append(nxt)
            state = nxt
        if len(out) >= min_length:
            words.add("".join(out))
    return sorted(words)
