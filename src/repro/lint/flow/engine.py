"""Driver for the whole-program pass: cache, suppressions, baseline.

The flow pass is engineered to run on every CI push, so the expensive
part — parsing ~a hundred files into module summaries — hides behind a
content-hash cache: ``.repro-lint-cache.json`` maps each file path to
``(sha256, summary, flow suppressions)``, and a warm run re-parses only
files whose bytes changed. Linking the program and running the rules is
cheap and happens on every run; the cache also reports which import
SCCs the edit dirtied, which is the invalidation granularity an
SCC-incremental analyzer observes (and what the cache tests assert on).

Findings can be silenced two ways, both requiring a justification:

* the same inline ``# repro-lint: disable=CODE -- why`` comments the
  per-file pass uses (``TH009`` is kept as an alias for ``TH010`` so
  suppressions written against the retired per-file rule keep working);
* a reviewed baseline file (``lint-baseline.json``) for grandfathered
  findings. A baseline entry that matches nothing is *stale* and errors
  like ``LINT002``; an entry without a justification errors like
  ``LINT001`` — the baseline can only shrink silently, never rot.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from ..engine import (
    FLOW_CODES,
    META_NO_JUSTIFICATION,
    META_UNUSED_SUPPRESSION,
    LintReport,
    LintViolation,
    _parse_suppressions,
    iter_python_files,
)
from . import rules as _rules  # noqa: F401  (registers the flow rules)
from .graph import (
    ModuleSummary,
    Program,
    SUMMARY_VERSION,
    module_name_of,
    source_hash,
    summarize_source,
)
from .rules import all_flow_rules

__all__ = [
    "DEFAULT_BASELINE",
    "DEFAULT_CACHE",
    "FlowResult",
    "FlowStats",
    "run_flow",
]

DEFAULT_CACHE = ".repro-lint-cache.json"
DEFAULT_BASELINE = "lint-baseline.json"
CACHE_VERSION = 1

#: Retired per-file codes that forward to their flow successor: a
#: suppression (or baseline entry) written against the alias silences
#: the successor at the same site.
CODE_ALIASES = {"TH009": "TH010"}


@dataclass
class FlowStats:
    """What one flow run did — the cache tests assert on these."""

    files: int = 0
    reparsed: list[str] = field(default_factory=list)
    cached: int = 0
    total_sccs: int = 0
    dirty_sccs: int = 0
    #: Modules an SCC-granular invalidation re-analyzes for this edit:
    #: every member of every import SCC containing a re-parsed file.
    reanalyzed_modules: list[str] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "files": self.files,
            "reparsed": list(self.reparsed),
            "cached": self.cached,
            "total_sccs": self.total_sccs,
            "dirty_sccs": self.dirty_sccs,
            "reanalyzed_modules": list(self.reanalyzed_modules),
        }


@dataclass
class FlowResult:
    """Everything the CLI needs from one whole-program pass."""

    report: LintReport
    stats: FlowStats
    program: Program


def _flow_suppressions(source: str, path: str) -> list[dict]:
    """Inline suppressions that mention a flow code, cache-serialisable."""
    out = []
    for suppression in _parse_suppressions(source, path):
        codes = [c for c in suppression.codes if c in FLOW_CODES]
        if codes:
            out.append(
                {
                    "codes": codes,
                    "line": suppression.line,
                    "comment_line": suppression.comment_line,
                    "justified": suppression.justified,
                }
            )
    return out


def _load_cache(cache_path: Optional[Path]) -> dict:
    if cache_path is None or not cache_path.exists():
        return {}
    try:
        data = json.loads(cache_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return {}
    if (
        data.get("cache_version") != CACHE_VERSION
        or data.get("summary_version") != SUMMARY_VERSION
    ):
        return {}
    entries = data.get("entries")
    return entries if isinstance(entries, dict) else {}


def _store_cache(cache_path: Optional[Path], entries: dict) -> None:
    if cache_path is None:
        return
    payload = {
        "cache_version": CACHE_VERSION,
        "summary_version": SUMMARY_VERSION,
        "entries": entries,
    }
    try:
        cache_path.write_text(json.dumps(payload), encoding="utf-8")
    except OSError:
        pass  # a read-only checkout just runs cold every time


def _summarize_files(
    files: list[Path], cache_path: Optional[Path], stats: FlowStats
) -> tuple[dict, dict]:
    """Returns ``(module -> ModuleSummary, path -> suppression dicts)``."""
    cached_entries = _load_cache(cache_path)
    fresh_entries: dict = {}
    summaries: dict = {}
    suppressions: dict = {}
    for path in files:
        try:
            source = path.read_text(encoding="utf-8")
        except OSError:
            continue
        sha = source_hash(source)
        key = str(path)
        entry = cached_entries.get(key)
        if entry is not None and entry.get("sha") == sha:
            summary = ModuleSummary.from_dict(entry["summary"])
            stats.cached += 1
        else:
            try:
                summary = summarize_source(source, path, module_name_of(path))
            except SyntaxError:
                # The per-file pass reports LINT000 for this file.
                continue
            entry = {
                "sha": sha,
                "summary": summary.as_dict(),
                "suppressions": _flow_suppressions(source, key),
            }
            stats.reparsed.append(key)
        fresh_entries[key] = entry
        summaries[summary.module] = summary
        suppressions[key] = entry.get("suppressions", [])
    _store_cache(cache_path, fresh_entries)
    return summaries, suppressions


def _apply_suppressions(
    violations: list[LintViolation], suppressions: dict
) -> list[LintViolation]:
    surviving: list[LintViolation] = []
    used: set = set()
    for violation in violations:
        matched = False
        for suppression in suppressions.get(violation.path, []):
            if violation.line != suppression["line"]:
                continue
            codes = {
                CODE_ALIASES.get(code, code)
                for code in suppression["codes"]
            }
            if violation.code in codes:
                used.add((violation.path, suppression["comment_line"]))
                matched = True
        if not matched:
            surviving.append(violation)
    for path, entries in suppressions.items():
        for suppression in entries:
            if (path, suppression["comment_line"]) in used:
                continue
            codes = ", ".join(suppression["codes"])
            surviving.append(
                LintViolation(
                    code=META_UNUSED_SUPPRESSION,
                    message=(
                        f"flow suppression for {codes} matched no finding; "
                        "remove the stale disable comment"
                    ),
                    path=path,
                    line=suppression["comment_line"],
                )
            )
    return surviving


def _apply_baseline(
    violations: list[LintViolation], baseline_path: Optional[Path]
) -> list[LintViolation]:
    if baseline_path is None or not baseline_path.exists():
        return violations
    try:
        data = json.loads(baseline_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return violations + [
            LintViolation(
                code=META_UNUSED_SUPPRESSION,
                message=f"baseline {baseline_path} is not valid JSON",
                path=str(baseline_path),
                line=1,
            )
        ]
    entries = data.get("entries", [])
    surviving: list[LintViolation] = []
    used: set = set()
    for violation in violations:
        matched = False
        for index, entry in enumerate(entries):
            code = entry.get("code", "")
            if (
                violation.code in (code, CODE_ALIASES.get(code))
                and violation.path == entry.get("path")
                and violation.line == entry.get("line")
            ):
                used.add(index)
                matched = True
        if not matched:
            surviving.append(violation)
    for index, entry in enumerate(entries):
        where = f"{entry.get('code')} at {entry.get('path')}:{entry.get('line')}"
        if not str(entry.get("justification", "")).strip():
            surviving.append(
                LintViolation(
                    code=META_NO_JUSTIFICATION,
                    message=(
                        f"baseline entry {index + 1} ({where}) carries no "
                        "justification"
                    ),
                    path=str(baseline_path),
                    line=index + 1,
                )
            )
        if index not in used:
            surviving.append(
                LintViolation(
                    code=META_UNUSED_SUPPRESSION,
                    message=(
                        f"baseline entry {index + 1} ({where}) matched no "
                        "finding; remove the stale entry"
                    ),
                    path=str(baseline_path),
                    line=index + 1,
                )
            )
    return surviving


def run_flow(
    paths: list,
    cache: Optional[str] = DEFAULT_CACHE,
    baseline: Optional[str] = None,
    select: Optional[set] = None,
) -> FlowResult:
    """Run the whole-program pass over every ``.py`` file under ``paths``.

    ``cache=None`` disables the on-disk cache (always cold).
    ``baseline=None`` uses ``lint-baseline.json`` beside the CWD when it
    exists. ``select`` restricts to the listed flow codes.
    """
    stats = FlowStats()
    files = list(iter_python_files(paths))
    stats.files = len(files)
    cache_path = Path(cache) if cache is not None else None
    summaries, suppressions = _summarize_files(files, cache_path, stats)
    program = Program(summaries)

    scc_of = program.scc_of()
    components = {frozenset(c) for c in program.sccs()}
    stats.total_sccs = len(components)
    reparsed_modules = {
        summary.module
        for summary in program.modules.values()
        if summary.path in set(stats.reparsed)
    }
    dirty = {
        scc_of[module] for module in reparsed_modules if module in scc_of
    }
    stats.dirty_sccs = len(dirty)
    stats.reanalyzed_modules = sorted(
        module for component in dirty for module in component
    )

    violations: list[LintViolation] = []
    for flow in all_flow_rules():
        if select is not None and flow.code not in select:
            continue
        violations.extend(flow.checker(program))
    violations = _apply_suppressions(violations, suppressions)

    baseline_path = (
        Path(baseline) if baseline is not None else Path(DEFAULT_BASELINE)
    )
    if baseline is not None or baseline_path.exists():
        violations = _apply_baseline(violations, baseline_path)

    violations.sort(key=lambda v: (v.path, v.line, v.code))
    report = LintReport(files_checked=stats.files, violations=violations)
    return FlowResult(report=report, stats=stats, program=program)
