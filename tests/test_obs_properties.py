"""Property tests tying observability numbers to raw ``DiskStats``.

Three invariants from the issue, for mixed insert/search/delete/range
workloads across every file kind (TH, THCL, MLTH, B+-tree):

1. ``access_cost`` deltas are non-negative — counters never run
   backwards around an operation;
2. deltas are additive across devices — the combined figure equals the
   sum of per-device ``DiskStats`` deltas taken independently;
3. span-attributed access counts reconcile exactly: the sum over root
   spans plus the tracer's unattributed remainder equals the raw
   ``DiskStats`` delta over every device the file touches.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import BPlusTree, MLTHFile, SplitPolicy, THFile
from repro.analysis.metrics import _disks_of, access_cost
from repro.obs import TRACER, trace

# ----------------------------------------------------------------------
# Workload strategies
# ----------------------------------------------------------------------
keys_strategy = st.lists(
    st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=6),
    min_size=1,
    max_size=40,
    unique=True,
)

FILE_KINDS = {
    "th": lambda: THFile(bucket_capacity=4),
    "thcl": lambda: THFile(
        bucket_capacity=4, policy=SplitPolicy.thcl_guaranteed_half()
    ),
    "mlth": lambda: MLTHFile(bucket_capacity=4, page_capacity=8),
    "btree": lambda: BPlusTree(leaf_capacity=4),
}


class Collect:
    def __init__(self):
        self.events = []

    def on_event(self, event):
        self.events.append(event)


@pytest.fixture(autouse=True)
def _tracer_is_clean():
    assert not TRACER.enabled
    yield
    assert not TRACER.enabled


def run_mixed_workload(file, keys):
    """Insert all, search all (plus misses), range, delete half."""
    for k in keys:
        file.insert(k)
    for k in keys:
        file.get(k)
        file.contains(k + "q")  # unsuccessful probe
    list(file.range_items(min(keys), max(keys)))
    for k in keys[::2]:
        file.delete(k)


# ----------------------------------------------------------------------
# 1. access_cost deltas are non-negative
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", sorted(FILE_KINDS))
@given(keys=keys_strategy)
@settings(max_examples=25, deadline=None)
def test_access_cost_deltas_non_negative(kind, keys):
    file = FILE_KINDS[kind]()
    costs = []
    for k in keys:
        costs.append(access_cost(file, lambda k=k: file.insert(k)))
    for k in keys:
        costs.append(access_cost(file, lambda k=k: file.get(k)))
    for k in keys[::2]:
        costs.append(access_cost(file, lambda k=k: file.delete(k)))
    for cost in costs:
        assert cost["reads"] >= 0
        assert cost["writes"] >= 0
        assert cost["accesses"] == cost["reads"] + cost["writes"]


# ----------------------------------------------------------------------
# 2. deltas are additive across devices
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", sorted(FILE_KINDS))
@given(keys=keys_strategy)
@settings(max_examples=25, deadline=None)
def test_access_cost_additive_across_devices(kind, keys):
    file = FILE_KINDS[kind]()
    disks = _disks_of(file)
    assert disks  # every kind exposes at least one device

    def one_op(thunk):
        before = [d.stats.snapshot() for d in disks]
        combined = access_cost(file, thunk)
        per_device = [d.stats.delta(s) for d, s in zip(disks, before)]
        assert combined["reads"] == sum(d.reads for d in per_device)
        assert combined["writes"] == sum(d.writes for d in per_device)

    for k in keys:
        one_op(lambda k=k: file.insert(k))
    for k in keys:
        one_op(lambda k=k: file.get(k))
    one_op(lambda: list(file.range_items(min(keys), max(keys))))
    for k in keys[::2]:
        one_op(lambda k=k: file.delete(k))


# ----------------------------------------------------------------------
# 3. span attribution reconciles exactly with DiskStats
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", sorted(FILE_KINDS))
@given(keys=keys_strategy)
@settings(max_examples=25, deadline=None)
def test_span_attribution_reconciles_with_disk_stats(kind, keys):
    col = Collect()
    with trace(sinks=[col]) as tr:
        file = FILE_KINDS[kind]()
        # Construction itself may touch the disk (e.g. the B+-tree
        # reads back its root); those accesses are legitimately
        # unattributed — no operation span is open yet.
        ctor = [(d.stats.reads, d.stats.writes) for d in _disks_of(file)]
        run_mixed_workload(file, keys)
        unattributed = (tr.unattributed_reads, tr.unattributed_writes)

    root_ends = [
        e
        for e in col.events
        if e.name == "span_end" and e.fields["parent"] is None
    ]
    span_reads = sum(e.fields["reads"] for e in root_ends)
    span_writes = sum(e.fields["writes"] for e in root_ends)

    disks = _disks_of(file)
    raw_reads = sum(d.stats.reads for d in disks)
    raw_writes = sum(d.stats.writes for d in disks)

    assert span_reads + unattributed[0] == raw_reads
    assert span_writes + unattributed[1] == raw_writes
    # Every operation we issued went through a span: only construction
    # is unattributed, exactly.
    assert unattributed == (
        sum(r for r, _ in ctor),
        sum(w for _, w in ctor),
    )

    # Event-level cross-check: one disk_read/disk_write event per
    # accounted access.
    n_reads = sum(1 for e in col.events if e.name == "disk_read")
    n_writes = sum(1 for e in col.events if e.name == "disk_write")
    assert (n_reads, n_writes) == (raw_reads, raw_writes)


# ----------------------------------------------------------------------
# Tracing must not change what the file does or what DiskStats count
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", sorted(FILE_KINDS))
@given(keys=keys_strategy)
@settings(max_examples=10, deadline=None)
def test_tracing_does_not_change_access_counts(kind, keys):
    plain = FILE_KINDS[kind]()
    run_mixed_workload(plain, keys)

    with trace():
        traced = FILE_KINDS[kind]()
        run_mixed_workload(traced, keys)

    plain_totals = [(d.stats.reads, d.stats.writes) for d in _disks_of(plain)]
    traced_totals = [(d.stats.reads, d.stats.writes) for d in _disks_of(traced)]
    assert plain_totals == traced_totals
    assert sorted(plain.items()) == sorted(traced.items())
