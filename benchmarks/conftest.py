"""Shared helpers for the benchmark harness.

Each benchmark regenerates one table/figure of the paper (see
EXPERIMENTS.md). The ``report`` fixture prints the reproduced table on
the real stdout (even under pytest capture) and archives it under
``benchmarks/results/`` so a plain ``pytest benchmarks/ --benchmark-only``
run leaves the full reproduction on disk.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis import format_table

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def report(capsys):
    """Print and archive an experiment's table."""

    def _report(name: str, rows, title: str) -> None:
        text = format_table(rows, title=title)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print()
            print(text)

    return _report


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
