"""Trie Hashing with Controlled Load — a full reproduction.

This library reproduces W. Litwin et al.'s trie hashing family of access
methods for primary-key ordered dynamic files:

* **TH** — basic trie hashing (/LIT81/, SIGMOD 1981): key search through
  an in-core binary digit trie, one disk access per lookup;
* **THCL** — trie hashing with controlled load: deterministic splits,
  shared leaves instead of nil nodes, any target load factor up to 100%,
  redistribution, and a guaranteed 50% floor under deletions;
* **MLTH** — multilevel trie hashing: the trie itself paged to disk,
  two accesses per lookup for gigabyte-scale files;
* a **B+-tree** baseline (:mod:`repro.btree`) for every comparison the
  paper draws;
* **TH-star** — a distributed shard layer (:mod:`repro.distributed`)
  where clients route with possibly-stale trie images that converge
  through Image Adjustment Messages (arXiv:1205.0439).

Quickstart::

    from repro import THFile, SplitPolicy

    f = THFile(bucket_capacity=4)          # basic trie hashing
    for word in ["the", "of", "and", "to", "a"]:
        f.insert(word)
    assert "the" in f
    print(list(f.range_items("a", "of")))

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
reproduction of every figure and table of the paper.
"""

from . import obs
from .btree import BPlusTree, bulk_load_compact
from .core import (
    ALPHANUMERIC,
    DEFAULT_ALPHABET,
    LOWERCASE,
    PRINTABLE,
    Alphabet,
    CapacityError,
    DuplicateKeyError,
    FileStats,
    InvalidKeyError,
    KeyNotFoundError,
    SplitPolicy,
    StorageError,
    THFile,
    Trie,
    TrieCorruptionError,
    TrieHashingError,
)
from .core.bulk import bulk_load_th
from .core.cursor import Cursor
from .core.errors import CrashError, RecoveryError
from .core.image import TrieImage
from .core.mlth import MLTHFile
from .core.overflow import OverflowTHFile
from .distributed import (
    Cluster,
    DistributedError,
    DistributedFile,
    FaultPlan,
    RetryPolicy,
    ShardPolicy,
    ShardUnavailableError,
)
from .storage.recovery import DurableFile
from .storage.wal import StableStore

__version__ = "1.0.0"

__all__ = [
    "Alphabet",
    "ALPHANUMERIC",
    "DEFAULT_ALPHABET",
    "LOWERCASE",
    "PRINTABLE",
    "CapacityError",
    "CrashError",
    "DuplicateKeyError",
    "InvalidKeyError",
    "KeyNotFoundError",
    "RecoveryError",
    "StorageError",
    "TrieCorruptionError",
    "TrieHashingError",
    "DurableFile",
    "StableStore",
    "FileStats",
    "THFile",
    "MLTHFile",
    "OverflowTHFile",
    "Cursor",
    "Cluster",
    "DistributedError",
    "DistributedFile",
    "FaultPlan",
    "RetryPolicy",
    "ShardPolicy",
    "ShardUnavailableError",
    "TrieImage",
    "BPlusTree",
    "bulk_load_compact",
    "bulk_load_th",
    "SplitPolicy",
    "Trie",
    "obs",
    "__version__",
]
