"""Shared fixtures for the test suite.

Hypothesis budgets are profile-driven: the ``default`` profile keeps
local runs fast, ``ci`` pins reproducible output for the workflow jobs,
and ``nightly`` multiplies the example and step budgets for the
scheduled deep run. Select with ``HYPOTHESIS_PROFILE=nightly pytest``.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

from repro import LOWERCASE, THFile
from repro.workloads import MOST_USED_WORDS, KeyGenerator

settings.register_profile(
    "default", max_examples=25, stateful_step_count=40, deadline=None
)
settings.register_profile(
    "ci",
    max_examples=40,
    stateful_step_count=50,
    deadline=None,
    print_blob=True,
    derandomize=True,
)
settings.register_profile(
    "nightly",
    max_examples=300,
    stateful_step_count=150,
    deadline=None,
    print_blob=True,
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


@pytest.fixture
def alphabet():
    """The paper's example alphabet: space + lowercase letters."""
    return LOWERCASE


@pytest.fixture
def words():
    """The 31 most-used English words of Fig 1, in insertion order."""
    return list(MOST_USED_WORDS)


@pytest.fixture
def fig1_file(words):
    """The paper's example file: the 31 words inserted with b = 4."""
    f = THFile(bucket_capacity=4)
    for word in words:
        f.insert(word)
    return f


@pytest.fixture
def generator():
    """A deterministic key generator."""
    return KeyGenerator(seed=1234)


@pytest.fixture
def small_keys(generator):
    """300 unique random keys in random order."""
    return generator.uniform(300)


@pytest.fixture
def sorted_keys(small_keys):
    """The same 300 keys, ascending."""
    return sorted(small_keys)


def build_file(keys, b=8, policy=None, check_every=None):
    """Insert ``keys`` into a fresh file, optionally checking as we go."""
    f = THFile(bucket_capacity=b, policy=policy)
    for i, key in enumerate(keys):
        f.insert(key)
        if check_every and i % check_every == 0:
            f.check()
    return f
