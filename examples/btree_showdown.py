#!/usr/bin/env python
"""TH versus the B+-tree: the Section 5 comparison, live.

Loads the same records into basic TH, THCL and a B+-tree under two
regimes (random and unexpected-ascending insertions) and prints the
criteria the paper argues with: load factor, disk accesses per search
and insert, index bytes, and the deletion floor.

Run:  python examples/btree_showdown.py
"""

from repro.analysis import format_table, sec5_btree_comparison
from repro import BPlusTree, SplitPolicy, THFile
from repro.workloads import KeyGenerator


def deletion_floor_demo() -> None:
    keys = KeyGenerator(5).uniform(3000)
    th = THFile(bucket_capacity=10, policy=SplitPolicy.thcl())
    bt = BPlusTree(leaf_capacity=10)
    for k in keys:
        th.insert(k)
        bt.insert(k)
    import random

    victims = list(keys)
    random.Random(5).shuffle(victims)
    for k in victims[:2400]:
        th.delete(k)
        bt.delete(k)
    th_sizes = [len(th.store.peek(a)) for a in th.store.live_addresses()]
    from repro.btree.node import LeafNode

    bt_sizes = [len(n) for _, n in bt._walk_nodes() if isinstance(n, LeafNode)]
    print("\nafter deleting 80% of records (floor = b//2 = 5):")
    print(f"  THCL  : min bucket {min(th_sizes)}, load {th.load_factor():.1%}")
    print(f"  B+tree: min leaf   {min(bt_sizes)}, load {bt.load_factor():.1%}")


def main() -> None:
    rows = sec5_btree_comparison(count=4000, bucket_capacity=20)
    print(format_table(rows, title="Section 5 criteria (4000 keys, b = 20)"))
    print(
        "\nreading the table:\n"
        " - search_acc: TH keeps the trie in core -> 1 access; the\n"
        "   B+-tree descends height-many nodes (root unpinned here).\n"
        " - index_bytes: six-byte cells vs key+pointer branch entries.\n"
        " - ascending order: THCL and the compact B-tree both hit 100%\n"
        "   load, but the trie stays several times smaller."
    )
    deletion_floor_demo()


if __name__ == "__main__":
    main()
